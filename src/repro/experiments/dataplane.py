"""Zero-copy dataset plane: realize cohort records once, attach everywhere.

The cohort protocol is embarrassingly parallel, but its inputs are not
small: every (subject, version) task needs the subject's training and
test recordings plus a handful of donor recordings.  Before this module,
each :class:`~repro.experiments.runner.CohortRunner` worker process
re-synthesized every recording it touched from scratch -- the host-side
mirror image of the paper's problem of wasting cycles on a budgeted
device.

The plane fixes that with a publish/attach split:

* **Publish** (parent): realize the cohort's record working set once
  (through the experiment cache, so nothing is synthesized twice), then
  serialize every record's four arrays into a single
  ``multiprocessing.shared_memory`` segment.  When shared memory is
  unavailable (no ``/dev/shm``, exotic platforms, permission failures)
  the plane degrades to an on-disk ``.npz`` artifact.
* **Attach** (workers): map the segment and rebuild each :class:`Record`
  as zero-copy NumPy views into it, then seed the worker's process-local
  :data:`~repro.experiments.cache.EXPERIMENT_CACHE` under the exact keys
  the pipeline's ``_record`` helper would use -- so ``run_subject``
  finds every recording already "synthesized".  Shared views are billed
  to the cache at a nominal cost: the bytes exist once machine-wide, not
  once per worker.  The ``.npz`` fallback copies each array once per
  worker at attach time (still one synthesis total instead of one per
  worker) and is billed at its real size.

Cleanup guarantees
------------------

A published segment is unlinked exactly once, whichever exit path runs
first: explicit :meth:`DatasetPlane.unlink`/:meth:`~DatasetPlane.close`,
the owning runner's ``close()``/context exit, an exception unwinding a
cohort run (including ``KeyboardInterrupt``), garbage collection of the
plane, or interpreter shutdown (``weakref.finalize`` registers an atexit
hook).  Worker crashes and pool rebuilds never unlink: the rebuilt
pool's workers re-attach the same segment.  On Linux an attached mapping
survives unlinking, so workers stay valid even if the parent unlinks
while they still hold views.
"""

from __future__ import annotations

import logging
import os
import secrets
import tempfile
import time
import weakref
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.experiments.cache import EXPERIMENT_CACHE
from repro.experiments.pipeline import (
    ExperimentConfig,
    cohort_record_specs,
    make_dataset,
    realize_record,
)
from repro.signals.dataset import Record, SyntheticFantasia

__all__ = [
    "DatasetPlane",
    "PlaneManifest",
    "RecordBlock",
    "attach_records",
    "attached_plane_tokens",
    "leaked_segments",
    "perf_stats",
    "realize_cohort_records",
    "seed_worker_cache",
]

logger = logging.getLogger(__name__)

#: Errors a shared-memory publish can legitimately fail with at runtime:
#: no ``/dev/shm`` or exhausted names/permissions/space (``OSError``
#: covers ``FileExistsError``/``FileNotFoundError``/``PermissionError``),
#: a platform without the module (``ImportError``), an allocation the
#: host cannot satisfy (``MemoryError``), and buffer-protocol trouble
#: while filling the segment (``BufferError``/``ValueError``).  Anything
#: else is a bug and must propagate.
PUBLISH_ERRORS = (OSError, ImportError, MemoryError, BufferError, ValueError)

#: Process-local perf accounting of the plane's publish/attach work,
#: cumulative since process start.  Counters cover *this* process only
#: (each pool worker keeps its own copy); the orchestrator snapshots
#: parent-side deltas around every study unit for the perf trajectory.
_PERF = {"publishes": 0, "publish_s": 0.0, "attaches": 0, "attach_s": 0.0}


def perf_stats() -> dict[str, float]:
    """A snapshot of this process's publish/attach perf counters."""
    return dict(_PERF)

#: Shared-memory segment name prefix; the CI leak check and the tests
#: grep ``/dev/shm`` for it after runs and crashes.
SEGMENT_PREFIX = "sift_plane_"

#: The arrays serialized per record, in layout order.
_FIELDS = ("ecg", "abp", "r_peaks", "systolic_peaks")

#: Alignment of each array inside the segment, in bytes.
_ALIGN = 64


def _plane_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(4)}"


@dataclass(frozen=True)
class RecordBlock:
    """Layout of one record inside the plane.

    ``fields`` maps each array of :data:`_FIELDS` to ``(offset, count,
    dtype_str)``; offsets index the shared segment (the ``.npz`` backend
    addresses members by name instead and ignores them).
    """

    cache_key: tuple
    subject_id: str
    sample_rate: float
    fields: tuple[tuple[str, int, int, str], ...]


@dataclass(frozen=True)
class PlaneManifest:
    """Everything a worker needs to attach: picklable, arrays excluded.

    ``token`` identifies the published segment instance; workers memoize
    attachments by it, so re-submitted tasks (retries, rebuilt pools)
    attach at most once per process.
    """

    token: str
    backend: str  # "shm" | "npz"
    name: str | None  # shared-memory segment name (shm backend)
    path: str | None  # artifact path (npz backend)
    total_bytes: int
    blocks: tuple[RecordBlock, ...]

    def __post_init__(self) -> None:
        if self.backend not in ("shm", "npz"):
            raise ValueError(f"unknown plane backend: {self.backend!r}")


def _layout(records: Mapping[Hashable, Record]) -> tuple[list[RecordBlock], int]:
    """Assign aligned offsets to every array of every record."""
    blocks: list[RecordBlock] = []
    offset = 0
    for key, record in records.items():
        fields = []
        for name in _FIELDS:
            array = np.ascontiguousarray(getattr(record, name))
            offset = -(-offset // _ALIGN) * _ALIGN
            fields.append((name, offset, int(array.size), array.dtype.str))
            offset += array.nbytes
        blocks.append(
            RecordBlock(
                cache_key=tuple(key) if isinstance(key, tuple) else (key,),
                subject_id=record.subject_id,
                sample_rate=record.sample_rate,
                fields=tuple(fields),
            )
        )
    return blocks, offset


def _cleanup_segment(shm, path: str | None) -> None:
    """Idempotent unlink of a plane's backing storage (finalizer body)."""
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # stray exported views: mapping dies with us
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    if path is not None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


class DatasetPlane:
    """Parent-side handle of a published record working set.

    Build one with :meth:`publish`; ship :attr:`manifest` to workers;
    :meth:`unlink` (or ``close()``, or garbage collection, or interpreter
    exit -- whichever comes first) destroys the backing segment exactly
    once.
    """

    def __init__(self, manifest: PlaneManifest, shm=None, path: str | None = None):
        self.manifest = manifest
        self._finalizer = weakref.finalize(self, _cleanup_segment, shm, path)

    @classmethod
    def publish(
        cls,
        records: Mapping[Hashable, Record],
        backend: str = "auto",
        directory: str | None = None,
    ) -> "DatasetPlane":
        """Serialize ``records`` once, into shared memory when possible.

        ``backend`` is ``"auto"`` (shared memory, falling back to the
        on-disk artifact), ``"shm"`` or ``"npz"``; ``directory`` places
        the fallback artifact (default: the system temp dir).
        """
        if backend not in ("auto", "shm", "npz"):
            raise ValueError(f"unknown plane backend: {backend!r}")
        started = time.perf_counter()
        blocks, total = _layout(records)
        plane = None
        if backend in ("auto", "shm"):
            try:
                plane = cls._publish_shm(records, blocks, total)
            except PUBLISH_ERRORS as exc:
                if backend == "shm":
                    raise
                # Degrading to the .npz artifact is correct but slower
                # (workers copy at attach time); make the cause visible
                # instead of silently losing the zero-copy path.
                logger.warning(
                    "dataset-plane shared-memory publish failed; falling "
                    "back to the .npz artifact: error=%s message=%r "
                    "records=%d bytes=%d",
                    type(exc).__name__,
                    str(exc),
                    len(records),
                    total,
                )
        if plane is None:
            plane = cls._publish_npz(records, blocks, total, directory)
        _PERF["publishes"] += 1
        _PERF["publish_s"] += time.perf_counter() - started
        return plane

    @classmethod
    def _publish_shm(cls, records, blocks, total) -> "DatasetPlane":
        from multiprocessing import shared_memory

        shm = None
        for _ in range(3):  # name collisions are theoretical; retry anyway
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, total), name=_plane_name()
                )
                break
            except FileExistsError:
                continue
        if shm is None:
            raise FileExistsError("could not allocate a unique segment name")
        try:
            for block, record in zip(blocks, records.values()):
                for name, offset, count, dtype in block.fields:
                    view = np.frombuffer(
                        shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
                    )
                    view[:] = getattr(record, name)
                    del view  # drop the exported buffer before any close()
            manifest = PlaneManifest(
                token=shm.name,
                backend="shm",
                name=shm.name,
                path=None,
                total_bytes=total,
                blocks=tuple(blocks),
            )
        except BaseException:
            _cleanup_segment(shm, None)
            raise
        return cls(manifest, shm=shm)

    @classmethod
    def _publish_npz(cls, records, blocks, total, directory) -> "DatasetPlane":
        fd, path = tempfile.mkstemp(
            prefix=SEGMENT_PREFIX, suffix=".npz", dir=directory
        )
        os.close(fd)
        try:
            arrays = {
                f"b{i}_{name}": np.ascontiguousarray(getattr(record, name))
                for i, record in enumerate(records.values())
                for name in _FIELDS
            }
            np.savez(path, **arrays)
            manifest = PlaneManifest(
                token=os.path.basename(path),
                backend="npz",
                name=None,
                path=path,
                total_bytes=total,
                blocks=tuple(blocks),
            )
        except BaseException:
            _cleanup_segment(None, path)
            raise
        return cls(manifest, path=path)

    @property
    def alive(self) -> bool:
        """False once the backing segment has been unlinked."""
        return self._finalizer.alive

    def unlink(self) -> None:
        """Destroy the backing segment (idempotent)."""
        self._finalizer()

    # A plane holds no other resources; closing is unlinking.
    close = unlink

    def __enter__(self) -> "DatasetPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


@dataclass
class _AttachedPlane:
    records: dict[tuple, Record]
    shm: object | None  # keeps the mapping alive while views exist
    backend: str


#: Process-local attachments, keyed by manifest token.  Bounded to the
#: *current* plane: attaching a new token evicts every stale one (and the
#: cache entries whose arrays may view into it).
_ATTACHED: dict[str, _AttachedPlane] = {}


def attached_plane_tokens() -> tuple[str, ...]:
    """Tokens of the planes this process currently has attached."""
    return tuple(_ATTACHED)


def _evict_stale_planes(current_token: str) -> None:
    """Drop attachments to other planes before mapping a new one.

    Long-lived pool workers outlive cohort runs; without eviction every
    plane they ever attached (and every record view seeded from it)
    would stay mapped for the worker's lifetime.  Stale cache entries
    may hold views into the stale segments, so the cache goes first.
    """
    stale = [token for token in _ATTACHED if token != current_token]
    if not stale:
        return
    EXPERIMENT_CACHE.clear()
    for token in stale:
        plane = _ATTACHED.pop(token)
        plane.records.clear()
        if plane.shm is not None:
            try:
                plane.shm.close()
            except BufferError:
                # A stray view still exports the buffer; the mapping is
                # reclaimed when the worker exits instead.
                pass


def _attach(manifest: PlaneManifest) -> _AttachedPlane:
    if manifest.backend == "shm":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=manifest.name)

        def array_for(index: int, name: str, offset: int, count: int, dtype: str):
            return np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
            )

    else:
        shm = None
        with np.load(manifest.path) as archive:
            members = {key: archive[key] for key in archive.files}

        def array_for(index: int, name: str, offset: int, count: int, dtype: str):
            return members[f"b{index}_{name}"]

    records: dict[tuple, Record] = {}
    for index, block in enumerate(manifest.blocks):
        arrays = {
            name: array_for(index, name, offset, count, dtype)
            for name, offset, count, dtype in block.fields
        }
        records[block.cache_key] = Record(
            subject_id=block.subject_id,
            sample_rate=block.sample_rate,
            **arrays,
        )
    return _AttachedPlane(records=records, shm=shm, backend=manifest.backend)


def attach_records(manifest: PlaneManifest) -> Mapping[tuple, Record]:
    """The plane's records, as zero-copy views (memoized per process)."""
    plane = _ATTACHED.get(manifest.token)
    if plane is None:
        started = time.perf_counter()
        _evict_stale_planes(manifest.token)
        plane = _ATTACHED[manifest.token] = _attach(manifest)
        _PERF["attaches"] += 1
        _PERF["attach_s"] += time.perf_counter() - started
    return plane.records


def seed_worker_cache(manifest: PlaneManifest) -> None:
    """Attach the plane and pre-populate this process's experiment cache.

    Idempotent and cheap after the first call: re-seeding refreshes the
    entries' LRU recency, so records a tiny budget evicted mid-run come
    back before the next task instead of being re-synthesized.
    """
    records = attach_records(manifest)
    shared = manifest.backend == "shm"
    for key, record in records.items():
        # Shared views cost one byte: the arrays are resident once
        # machine-wide, not once per worker.  The npz fallback's copies
        # are real per-process memory and are billed as such.
        EXPERIMENT_CACHE.put(key, record, cost=1 if shared else record.nbytes)


# ----------------------------------------------------------------------
# Realization and diagnostics
# ----------------------------------------------------------------------


def realize_cohort_records(
    config: ExperimentConfig,
    dataset: SyntheticFantasia | None = None,
    subjects: Iterable[int] | None = None,
) -> dict[tuple, Record]:
    """Realize the record working set of a cohort run, cache-backed.

    Returns ``{cache_key: Record}`` for every recording ``run_subject``
    would touch for the given subject indices (default: the whole
    cohort): the subject's training and test records plus the train- and
    test-donor records its donor split draws.  Keys are exactly the
    pipeline's record cache keys, so publishing and seeding cannot drift
    from what workers look up.
    """
    dataset = dataset if dataset is not None else make_dataset(config)
    return {
        key: realize_record(dataset, subject, duration, purpose, config)
        for key, (subject, duration, purpose) in cohort_record_specs(
            config, dataset, subjects
        ).items()
    }


def leaked_segments() -> list[str]:
    """Names of plane segments currently present in ``/dev/shm``.

    The CI leak check and the cleanup tests call this after runs and
    forced crashes; a non-empty result means some exit path failed to
    unlink.  Returns ``[]`` on platforms without ``/dev/shm``.
    """
    try:
        return sorted(
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
