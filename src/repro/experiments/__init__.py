"""Experiment harness: regenerates every table and figure of the paper.

- :mod:`~repro.experiments.pipeline` -- the shared per-subject
  train/deploy/evaluate pipeline and its configuration;
- :mod:`~repro.experiments.table2` -- Table II (detection performance,
  Amulet vs reference, three versions);
- :mod:`~repro.experiments.table3` -- Table III (memory and expected
  lifetime per version);
- :mod:`~repro.experiments.fig3` -- Fig. 3 (ARP-view resource breakdown
  and the battery-life/period slider);
- :mod:`~repro.experiments.ablations` -- the design-choice studies
  DESIGN.md calls out (window size, grid size, training duration, feature
  classes, classifier, fixed-point precision, attack types);
- :mod:`~repro.experiments.dataplane` -- the zero-copy dataset plane:
  cohort recordings serialized once into shared memory and attached
  (not rebuilt) by :class:`CohortRunner` workers;
- :mod:`~repro.experiments.orchestrator` -- the checkpointed driver over
  the whole study matrix: resumable JSONL unit checkpoints, zero-compute
  report re-evaluation, and the persisted perf trajectory the CI
  regression gate consumes.
"""

from repro.experiments.ablations import (
    attack_type_ablation,
    classifier_ablation,
    feature_class_ablation,
    fixed_point_ablation,
    grid_size_ablation,
    mixed_attack_training_ablation,
    training_duration_ablation,
    window_size_ablation,
)
from repro.experiments.cache import (
    DEFAULT_CACHE_BYTES,
    EXPERIMENT_CACHE,
    ExperimentCache,
    cache_disabled,
    entry_cost,
    set_cache_budget,
)
from repro.experiments.dataplane import (
    DatasetPlane,
    PlaneManifest,
    leaked_segments,
    realize_cohort_records,
)
from repro.experiments.fig3 import Fig3Result, format_fig3, run_fig3
from repro.experiments.orchestrator import (
    CheckpointStore,
    Orchestrator,
    compare_trajectories,
    config_hash,
    load_trajectory,
    study_names,
    write_trajectory,
)
from repro.experiments.pipeline import (
    ExperimentConfig,
    SubjectRunResult,
    make_dataset,
    run_subject,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    CohortOutcome,
    CohortRunner,
    TaskFaultReport,
    clear_experiment_cache,
    effective_workers,
)
from repro.experiments.robustness import (
    artifact_load_study,
    channel_loss_study,
    debounce_study,
    fault_matrix_study,
    format_fault_matrix,
)
from repro.experiments.universal import (
    UniversalStudyResult,
    run_universal_study,
)
from repro.experiments.table2 import (
    Table2Result,
    format_table2,
    format_table2_by_subject,
    run_table2,
)
from repro.experiments.table3 import Table3Result, format_table3, run_table3

__all__ = [
    "CheckpointStore",
    "CohortOutcome",
    "CohortRunner",
    "DEFAULT_CACHE_BYTES",
    "DatasetPlane",
    "EXPERIMENT_CACHE",
    "ExperimentCache",
    "ExperimentConfig",
    "Fig3Result",
    "Orchestrator",
    "PlaneManifest",
    "SubjectRunResult",
    "Table2Result",
    "Table3Result",
    "TaskFaultReport",
    "UniversalStudyResult",
    "artifact_load_study",
    "attack_type_ablation",
    "cache_disabled",
    "channel_loss_study",
    "classifier_ablation",
    "clear_experiment_cache",
    "compare_trajectories",
    "config_hash",
    "debounce_study",
    "effective_workers",
    "entry_cost",
    "fault_matrix_study",
    "feature_class_ablation",
    "fixed_point_ablation",
    "format_fault_matrix",
    "format_fig3",
    "format_table",
    "format_table2",
    "format_table2_by_subject",
    "format_table3",
    "grid_size_ablation",
    "leaked_segments",
    "load_trajectory",
    "make_dataset",
    "mixed_attack_training_ablation",
    "realize_cohort_records",
    "run_fig3",
    "run_subject",
    "run_table2",
    "run_table3",
    "run_universal_study",
    "set_cache_budget",
    "study_names",
    "training_duration_ablation",
    "window_size_ablation",
    "write_trajectory",
]
