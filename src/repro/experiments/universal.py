"""Universal-model study: does SIFT need per-user training?

The paper trains one model per wearer.  Because SIFT's signal is the
*consistency* between ECG and ABP (not the wearer's identity -- see
``tests/test_integration.py::test_sift_checks_consistency_not_identity``),
a natural question is whether a single cross-user model works, which
would remove the per-user enrollment step entirely.

Protocol: leave-one-subject-out.  For each held-out subject, pool the
training windows of all *other* subjects (negatives: their own
synchronized pairs; positives: replacement among themselves), train one
SVM, and evaluate on the held-out subject's standard labelled stream.
Compared against the paper's per-user models on the identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.training import build_training_set
from repro.core.versions import DetectorVersion, make_extractor
from repro.experiments.pipeline import (
    ExperimentConfig,
    build_stream,
    make_dataset,
    run_subject,
)
from repro.ml.kernels import make_kernel
from repro.ml.metrics import DetectionReport, mean_report, score_predictions
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC

__all__ = ["UniversalStudyResult", "run_universal_study"]


@dataclass(frozen=True)
class UniversalStudyResult:
    """Cohort-mean reports for the two training regimes."""

    per_user: DetectionReport
    universal: DetectionReport
    per_subject_universal: dict[str, DetectionReport]

    @property
    def accuracy_gap(self) -> float:
        """Per-user minus universal accuracy (positive = enrollment pays)."""
        return self.per_user.accuracy - self.universal.accuracy


def run_universal_study(
    config: ExperimentConfig | None = None,
    version: DetectorVersion | str = DetectorVersion.SIMPLIFIED,
) -> UniversalStudyResult:
    """Leave-one-subject-out universal model vs the paper's per-user models."""
    config = config or ExperimentConfig()
    if isinstance(version, str):
        version = DetectorVersion.from_name(version)
    dataset = make_dataset(config)

    # Pre-generate every subject's training record and donors once.
    records = {
        subject.subject_id: dataset.record(
            subject, config.train_duration_s, purpose="train"
        )
        for subject in dataset.subjects
    }
    if config.peak_source == "detected":
        records = {
            subject_id: record.redetect_peaks()
            for subject_id, record in records.items()
        }

    per_user_reports = []
    universal_reports: dict[str, DetectionReport] = {}
    for held_out in dataset.subjects:
        # The paper's per-user baseline on the standard stream.
        baseline = run_subject(
            dataset, held_out, version, config, with_device=False
        )
        per_user_reports.append(baseline.reference_report)

        # Universal model: pool every *other* subject's training set.
        extractor = make_extractor(version, grid_n=config.grid_n)
        X_parts, y_parts = [], []
        others = [s for s in dataset.subjects if s is not held_out]
        for subject in others:
            donors = [
                records[d.subject_id] for d in others if d is not subject
            ][: config.n_train_donors]
            training_set = build_training_set(
                extractor,
                records[subject.subject_id],
                donors,
                window_s=config.window_s,
                stride_s=config.train_stride_s,
                rng=np.random.default_rng([5, dataset.subjects.index(subject)]),
            )
            X_parts.append(training_set.X)
            y_parts.append(training_set.y)
        X = np.vstack(X_parts)
        y = np.concatenate(y_parts)

        scaler = StandardScaler()
        svc = SVC(
            C=config.svm_c,
            kernel=make_kernel(config.kernel, gamma=config.svm_gamma),
        )
        svc.fit(scaler.fit_transform(X), y)

        stream = build_stream(dataset, held_out, config)
        features = scaler.transform(extractor.extract_many(stream.windows))
        predictions = svc.predict_bool(features)
        universal_reports[held_out.subject_id] = score_predictions(
            predictions, stream.labels
        )

    return UniversalStudyResult(
        per_user=mean_report(per_user_reports),
        universal=mean_report(universal_reports.values()),
        per_subject_universal=universal_reports,
    )
