"""Table II: detection performance of the three detector versions.

For every subject and every version, the pipeline trains a user-specific
model, evaluates the same labelled stream on both platforms -- the
simulated Amulet and the float64 reference (the paper's MATLAB column) --
and averages the per-subject FP/FN/accuracy/F1 rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.versions import DetectorVersion
from repro.experiments.pipeline import ExperimentConfig, SubjectRunResult
from repro.experiments.reporting import format_table
from repro.experiments.runner import CohortOutcome, CohortRunner
from repro.ml.metrics import DetectionReport, mean_report

__all__ = ["Table2Result", "Table2Row", "format_table2", "run_table2"]

#: The values the paper reports, for side-by-side comparison in the bench
#: output and EXPERIMENTS.md.  Keys: (version, platform); values:
#: (FP %, FN %, Acc %, F1 %).
PAPER_TABLE2: dict[tuple[str, str], tuple[float, float, float, float]] = {
    ("original", "amulet"): (0.83, 12.50, 93.06, 92.77),
    ("original", "reference"): (5.83, 10.23, 91.97, 91.97),
    ("simplified", "amulet"): (6.67, 7.58, 92.86, 93.43),
    ("simplified", "reference"): (5.00, 12.88, 91.06, 90.28),
    ("reduced", "amulet"): (12.08, 15.15, 86.31, 87.10),
    ("reduced", "reference"): (22.08, 14.39, 81.76, 84.04),
}


@dataclass(frozen=True)
class Table2Row:
    """One (version, platform) row of Table II."""

    version: DetectorVersion
    platform: str  # "amulet" | "reference"
    report: DetectionReport

    @property
    def paper_values(self) -> tuple[float, float, float, float] | None:
        return PAPER_TABLE2.get((self.version.value, self.platform))


@dataclass(frozen=True)
class Table2Result:
    """All rows plus the per-subject details behind them."""

    rows: tuple[Table2Row, ...]
    per_subject: tuple[SubjectRunResult, ...]
    config: ExperimentConfig
    #: Outcomes of subjects that errored (empty on a clean run).
    failures: tuple[CohortOutcome, ...] = ()

    def row(self, version: DetectorVersion, platform: str) -> Table2Row:
        """Look up one (version, platform) row (KeyError if absent)."""
        for candidate in self.rows:
            if candidate.version is version and candidate.platform == platform:
                return candidate
        raise KeyError(f"no row for ({version}, {platform!r})")


def run_table2(
    config: ExperimentConfig | None = None,
    versions: tuple[DetectorVersion, ...] = tuple(DetectorVersion),
    jobs: int = 1,
    chunk_size: int | None = None,
    cache_bytes: int | None = None,
    task_timeout_s: float | None = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.5,
    share_dataset: bool = True,
) -> Table2Result:
    """Run the full Table II protocol.

    ``jobs > 1`` fans the per-subject runs over worker processes; the
    averages are identical to the serial run (failing subjects, if any,
    are excluded from the means and reported in ``failures``).
    ``chunk_size`` bounds the reference evaluation's scoring memory and
    ``cache_bytes`` the experiment cache's LRU budget (both per worker);
    neither changes a single reported number.  ``task_timeout_s``,
    ``max_retries`` and ``retry_backoff_s`` are the hardened runner's
    fault-tolerance knobs (see :class:`CohortRunner`); the defaults keep
    the historical fail-fast behaviour.  ``share_dataset`` publishes the
    cohort recordings once through the zero-copy dataset plane instead of
    re-synthesizing them in every worker (results are identical either
    way; disable only to diagnose shared-memory issues).
    """
    config = config or ExperimentConfig()
    per_subject: list[SubjectRunResult] = []
    failures: list[CohortOutcome] = []
    rows: list[Table2Row] = []
    with CohortRunner(
        config=config,
        jobs=jobs,
        with_device=True,
        chunk_size=chunk_size,
        cache_bytes=cache_bytes,
        task_timeout_s=task_timeout_s,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        share_dataset=share_dataset,
    ) as runner:
        for version in versions:
            outcomes = runner.run_version(version)
            failures.extend(o for o in outcomes if not o.ok)
            results = [o.result for o in outcomes if o.ok]
            per_subject.extend(results)
            rows.append(
                Table2Row(
                    version=version,
                    platform="amulet",
                    report=mean_report(
                        r.device_report for r in results if r.device_report
                    ),
                )
            )
            rows.append(
                Table2Row(
                    version=version,
                    platform="reference",
                    report=mean_report(r.reference_report for r in results),
                )
            )
    return Table2Result(
        rows=tuple(rows),
        per_subject=tuple(per_subject),
        config=config,
        failures=tuple(failures),
    )


def format_table2_by_subject(result: Table2Result) -> str:
    """Per-subject detail behind the averages (reference platform).

    The paper reports only cohort means; this view exposes the
    per-subject scatter, which is what makes small mean differences
    between versions statistically fragile.
    """
    subjects = sorted({r.subject_id for r in result.per_subject})
    versions = sorted(
        {r.version for r in result.per_subject}, key=lambda v: v.value
    )
    headers = ["Subject"] + [v.value for v in versions]
    body = []
    for subject_id in subjects:
        row = [subject_id]
        for version in versions:
            match = [
                r
                for r in result.per_subject
                if r.subject_id == subject_id and r.version is version
            ]
            row.append(
                f"{100 * match[0].reference_report.accuracy:.1f}%"
                if match
                else "-"
            )
        body.append(row)
    # Per-version scatter summary.
    import numpy as np

    spread_row = ["(std dev)"]
    for version in versions:
        accuracies = [
            r.reference_report.accuracy
            for r in result.per_subject
            if r.version is version
        ]
        spread_row.append(f"{100 * float(np.std(accuracies)):.1f}")
    body.append(spread_row)
    return format_table(
        headers, body, title="Per-subject accuracy (reference pipeline)"
    )


def format_table2(result: Table2Result, include_paper: bool = True) -> str:
    """Render the result in the paper's Table II layout."""
    headers = ["Version", "Platform", "Avg. FP", "Avg. FN", "Avg. Acc", "Avg. F1"]
    if include_paper:
        headers.append("(paper: FP/FN/Acc/F1)")
    body = []
    for row in result.rows:
        fp, fn, acc, f1 = row.report.as_percent_row()
        cells = [
            row.version.value.capitalize(),
            "Amulet" if row.platform == "amulet" else "Reference (MATLAB)",
            f"{fp:.2f}%",
            f"{fn:.2f}%",
            f"{acc:.2f}%",
            f"{f1:.2f}%",
        ]
        if include_paper:
            paper = row.paper_values
            cells.append(
                "/".join(f"{v:.2f}" for v in paper) if paper else "-"
            )
        body.append(cells)
    return format_table(
        headers,
        body,
        title="TABLE II: Performance Evaluation for Three Versions of Detector",
    )
