"""Fig. 3: the ARP-view resource-consumption snapshot.

ARP-view "presents developers a graphical view of the resource profile and
sliders that allow them to see the battery-life impact when they adjust
application parameters".  This experiment reproduces both halves for the
SIFT app: the per-component average-current breakdown (CPU by operation
class, peripherals, static rails) and the battery-life-vs-detection-period
slider sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.amulet.profiler import ResourceProfile
from repro.core.versions import DetectorVersion
from repro.experiments.pipeline import (
    ExperimentConfig,
    build_stream,
    make_dataset,
    train_detector,
)
from repro.experiments.reporting import format_bar_chart, format_table
from repro.sift_app.harness import AmuletSIFTRunner

__all__ = ["Fig3Result", "format_fig3", "run_fig3", "run_grid_resource_sweep"]

#: The detection periods the slider sweep evaluates, in seconds.
DEFAULT_PERIOD_SWEEP = (1.5, 3.0, 6.0, 12.0, 30.0)


@dataclass(frozen=True)
class Fig3Result:
    """Breakdown plus slider sweep for one app build."""

    version: DetectorVersion
    profile: ResourceProfile
    period_sweep: dict[float, float]  # period_s -> lifetime_days

    @property
    def breakdown(self) -> dict[str, float]:
        return self.profile.current_breakdown

    def top_consumers(self, n: int = 8) -> list[tuple[str, float]]:
        """The n largest current contributors, descending."""
        ranked = sorted(
            self.breakdown.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:n]


def run_fig3(
    config: ExperimentConfig | None = None,
    version: DetectorVersion = DetectorVersion.ORIGINAL,
    periods: tuple[float, ...] = DEFAULT_PERIOD_SWEEP,
    jobs: int = 1,
    cache_bytes: int | None = None,
) -> Fig3Result:
    """Profile one build and sweep the detection-period slider.

    ``jobs`` is accepted for CLI symmetry with table2/table3: the figure
    profiles a single build (the period sweep is a closed-form rescale of
    one profile), so there is nothing to fan out.  The run still benefits
    from the experiment cache shared with other experiments;
    ``cache_bytes`` rebudgets that cache.
    """
    del jobs  # single-build experiment; see docstring
    config = config or ExperimentConfig()
    if cache_bytes is not None:
        from repro.experiments.cache import set_cache_budget

        set_cache_budget(cache_bytes)
    dataset = make_dataset(config)
    subject = dataset.subjects[0]
    detector = train_detector(dataset, subject, version, config)
    runner = AmuletSIFTRunner(detector, frac_bits=config.frac_bits)
    runner.run_stream(build_stream(dataset, subject, config))
    profile = runner.profile(period_s=config.window_s)
    sweep = {
        period: profile.with_period(period).lifetime_days for period in periods
    }
    return Fig3Result(version=version, profile=profile, period_sweep=sweep)


def _grid_sweep_task(
    config: ExperimentConfig,
    grid_n: int,
    version_name: str,
    cache_bytes: int | None = None,
) -> dict[str, float]:
    """Top-level (picklable) single-grid profiling task."""
    from repro.amulet.firmware import StaticCheckError

    if cache_bytes is not None:
        from repro.experiments.cache import set_cache_budget

        set_cache_budget(cache_bytes)
    dataset = make_dataset(config)
    subject = dataset.subjects[0]
    swept = replace(config, grid_n=int(grid_n))
    detector = train_detector(dataset, subject, version_name, swept)
    try:
        runner = AmuletSIFTRunner(detector, frac_bits=swept.frac_bits)
    except StaticCheckError:
        # The toolchain's Insight #1 array limit rejects big grids:
        # an n x n uint8 matrix beyond the cap simply cannot deploy.
        return {
            "grid_n": float(grid_n),
            "deployable": 0.0,
            "detector_fram_kb": float("nan"),
            "detector_sram_bytes": float("nan"),
            "mcycles_per_window": float("nan"),
            "lifetime_days": float("nan"),
        }
    runner.run_stream(build_stream(dataset, subject, swept))
    profile = runner.profile(period_s=swept.window_s)
    return {
        "grid_n": float(grid_n),
        "deployable": 1.0,
        "detector_fram_kb": profile.app_fram_kb,
        "detector_sram_bytes": float(profile.app_sram_bytes),
        "mcycles_per_window": profile.cycles_per_event / 1e6,
        "lifetime_days": profile.lifetime_days,
    }


def run_grid_resource_sweep(
    config: ExperimentConfig | None = None,
    grids: tuple[int, ...] = (10, 25, 50, 100),
    version: DetectorVersion = DetectorVersion.SIMPLIFIED,
    jobs: int = 1,
    cache_bytes: int | None = None,
) -> list[dict[str, float]]:
    """The other ARP-view slider: resource cost of the grid size n.

    The accuracy side of this trade-off is
    :func:`repro.experiments.ablations.grid_size_ablation`; this sweep
    supplies the resource side -- detector FRAM (the n x n matrix) and
    battery lifetime (the per-window passes over it) -- so the two
    together answer "what does n = 50 cost?".  ``jobs > 1`` profiles the
    grid sizes in parallel worker processes; rows keep ``grids`` order.
    """
    config = config or ExperimentConfig()
    if jobs > 1 and len(grids) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.experiments.runner import effective_workers

        workers = min(effective_workers(jobs), len(grids))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _grid_sweep_task,
                    config,
                    int(grid_n),
                    version.value,
                    cache_bytes,
                )
                for grid_n in grids
            ]
            return [future.result() for future in futures]
    return [
        _grid_sweep_task(config, int(grid_n), version.value, cache_bytes)
        for grid_n in grids
    ]


def format_fig3(result: Fig3Result) -> str:
    """Render the ARP-view snapshot as text."""
    chart = format_bar_chart(
        result.top_consumers(),
        unit=" mA",
        title=(
            f"Fig. 3: Resource Consumption of SIFT app "
            f"({result.version.value} version)"
        ),
    )
    slider = format_table(
        ["Detection period (s)", "Expected lifetime (days)"],
        [
            [f"{period:g}", f"{days:.1f}"]
            for period, days in sorted(result.period_sweep.items())
        ],
        title="ARP-view slider: battery life vs detection period",
    )
    summary = (
        f"average current: {result.profile.average_current_ma:.4f} mA | "
        f"lifetime at {result.profile.period_s:g} s period: "
        f"{result.profile.lifetime_days:.1f} days"
    )
    return "\n\n".join([chart, slider, summary])
