"""Table III: resource usage of the three detector versions.

For each version the pipeline trains a detector (resource use is
independent of which subject's model is loaded -- the computation is
identical), deploys it on the simulated Amulet, streams the evaluation
windows through it and asks the Amulet Resource Profiler for the memory
layout and projected battery lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amulet.profiler import ResourceProfile
from repro.core.versions import DetectorVersion
from repro.experiments.pipeline import (
    ExperimentConfig,
    build_stream,
    make_dataset,
    train_detector,
)
from repro.experiments.reporting import format_table
from repro.sift_app.harness import AmuletSIFTRunner

__all__ = ["Table3Result", "format_table3", "run_table3"]

#: Paper values for side-by-side comparison: (system FRAM KB, detector
#: FRAM KB, system SRAM B, detector SRAM B, lifetime days).
PAPER_TABLE3: dict[str, tuple[float, float, int, int, int]] = {
    "original": (77.03, 4.79, 696, 259, 23),
    "simplified": (71.58, 4.02, 694, 259, 26),
    "reduced": (56.29, 2.56, 694, 69, 55),
}


@dataclass(frozen=True)
class Table3Result:
    """One resource profile per version."""

    profiles: dict[DetectorVersion, ResourceProfile]
    config: ExperimentConfig

    def profile(self, version: DetectorVersion) -> ResourceProfile:
        """The resource profile of one version."""
        return self.profiles[version]

    def lifetime_ratio(
        self, heavy: DetectorVersion, light: DetectorVersion
    ) -> float:
        """How much longer ``light`` lasts than ``heavy``."""
        return (
            self.profiles[light].lifetime_days
            / self.profiles[heavy].lifetime_days
        )


def _profile_version_task(
    config: ExperimentConfig,
    version_name: str,
    cache_bytes: int | None = None,
) -> tuple[str, ResourceProfile]:
    """Top-level (picklable) per-version profiling task."""
    if cache_bytes is not None:
        from repro.experiments.cache import set_cache_budget

        set_cache_budget(cache_bytes)
    dataset = make_dataset(config)
    subject = dataset.subjects[0]
    stream = build_stream(dataset, subject, config)
    detector = train_detector(dataset, subject, version_name, config)
    runner = AmuletSIFTRunner(detector, frac_bits=config.frac_bits)
    runner.run_stream(stream)
    return version_name, runner.profile(period_s=config.window_s)


def run_table3(
    config: ExperimentConfig | None = None,
    versions: tuple[DetectorVersion, ...] = tuple(DetectorVersion),
    jobs: int = 1,
    cache_bytes: int | None = None,
) -> Table3Result:
    """Run the Table III protocol (one subject is enough).

    ``jobs > 1`` profiles the versions in parallel worker processes
    (there are only three, so more than three workers is never useful).
    ``cache_bytes`` rebudgets the experiment cache in this process and in
    every worker.
    """
    config = config or ExperimentConfig()
    if cache_bytes is not None:
        from repro.experiments.cache import set_cache_budget

        set_cache_budget(cache_bytes)
    profiles: dict[DetectorVersion, ResourceProfile] = {}
    if jobs > 1 and len(versions) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.experiments.runner import effective_workers

        workers = min(effective_workers(jobs), len(versions))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _profile_version_task, config, version.value, cache_bytes
                )
                for version in versions
            ]
            for future in futures:
                name, profile = future.result()
                profiles[DetectorVersion.from_name(name)] = profile
    else:
        for version in versions:
            name, profile = _profile_version_task(config, version.value)
            profiles[DetectorVersion.from_name(name)] = profile
    return Table3Result(profiles=profiles, config=config)


def format_table3(result: Table3Result, include_paper: bool = True) -> str:
    """Render the result in the paper's Table III layout."""
    headers = ["Version", "Resource Type", "Measurements"]
    if include_paper:
        headers.append("(paper)")
    body = []
    for version, profile in result.profiles.items():
        paper = PAPER_TABLE3.get(version.value)
        rows = [
            (
                "Memory Use (FRAM)",
                f"{profile.system_fram_kb:.2f} KB_sys + {profile.app_fram_kb:.2f} KB_det",
                f"{paper[0]:.2f} + {paper[1]:.2f} KB" if paper else "-",
            ),
            (
                "Max Ram Use (SRAM)",
                f"{profile.system_sram_bytes} B_sys + {profile.app_sram_bytes} B_det",
                f"{paper[2]} + {paper[3]} B" if paper else "-",
            ),
            (
                "Expected Lifetime",
                f"{profile.lifetime_days:.0f} days",
                f"{paper[4]} days" if paper else "-",
            ),
        ]
        for i, (resource, measured, paper_text) in enumerate(rows):
            cells = [version.value.capitalize() if i == 0 else "", resource, measured]
            if include_paper:
                cells.append(paper_text)
            body.append(cells)
    return format_table(
        headers,
        body,
        title="TABLE III: Resource Usage of Three Versions of Detector",
    )
