"""Plain-text table and bar-chart rendering for experiment output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_bar_chart", "format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str | None = None
) -> str:
    """Monospace table with a header rule, like the paper's tables."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    rule = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render(cells[0]))
    lines.append(rule)
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


def format_bar_chart(
    items: Sequence[tuple[str, float]],
    unit: str = "",
    width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal ASCII bars, largest value = full width."""
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = [title] if title else []
    if not items:
        return "\n".join(lines + ["(empty)"])
    label_width = max(len(label) for label, _ in items)
    peak = max(abs(value) for _, value in items)
    for label, value in items:
        bar_len = 0 if peak == 0 else int(round(width * abs(value) / peak))
        lines.append(
            f"{label.ljust(label_width)} | {'#' * bar_len} {value:.6g}{unit}"
        )
    return "\n".join(lines)
