"""The shared experiment pipeline.

One :func:`run_subject` call reproduces the paper's per-subject protocol:
train a user-specific model on Delta = 20 minutes of the subject's data
(positive class from donor subjects' ECG), build the 2-minute / 50 %
altered evaluation stream from *unseen* data, evaluate the reference
("MATLAB") detector, deploy onto the simulated Amulet and evaluate the
device verdicts.  Every experiment module builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attacks.replacement import ReplacementAttack
from repro.attacks.scenario import AttackScenario, LabeledStream
from repro.core.detector import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.ml.metrics import DetectionReport
from repro.signals.dataset import Record, SyntheticFantasia
from repro.signals.subjects import SubjectParameters
from repro.sift_app.harness import AmuletSIFTRunner

__all__ = [
    "ExperimentConfig",
    "SubjectRunResult",
    "cohort_record_specs",
    "make_dataset",
    "realize_record",
    "record_cache_key",
    "run_subject",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the evaluation protocol (defaults = the paper's)."""

    n_subjects: int = 12
    seed: int = 2017
    sample_rate: float = 360.0
    window_s: float = 3.0
    grid_n: int = 50
    train_duration_s: float = 20.0 * 60.0  # Delta = 20 minutes
    test_duration_s: float = 2.0 * 60.0  # 2 minutes of unseen data
    altered_fraction: float = 0.5  # ~1 minute worth altered
    n_train_donors: int = 3
    n_test_donors: int = 3
    donor_duration_s: float = 120.0
    svm_c: float = 1.0
    kernel: str = "linear"
    #: RBF kernel width; threaded everywhere a kernel is built from this
    #: config so an ``"rbf"`` run never silently uses the default.
    svm_gamma: float = 0.5
    frac_bits: int = 14
    train_stride_s: float | None = None  # None = non-overlapping
    scenario_seed: int = 42
    #: Where the pre-stored peak indexes come from: "detected" runs the
    #: Pan-Tompkins-style detectors over the recordings (what produced the
    #: paper's pre-stored indexes, including their real-data noise);
    #: "true" uses the generator's ground truth.
    peak_source: str = "detected"

    def __post_init__(self) -> None:
        if self.n_subjects < 2:
            raise ValueError(
                "need at least 2 subjects (the attack needs a donor)"
            )
        if self.peak_source not in ("detected", "true"):
            raise ValueError('peak_source must be "detected" or "true"')
        if self.n_train_donors < 1 or self.n_test_donors < 1:
            raise ValueError("need at least one donor for each phase")
        if self.n_train_donors + self.n_test_donors > self.n_subjects - 1:
            raise ValueError(
                "not enough subjects to draw disjoint train and test donors"
            )

    @classmethod
    def quick(cls, **overrides) -> "ExperimentConfig":
        """A small configuration for tests: same protocol, less data."""
        base = cls(
            n_subjects=4,
            train_duration_s=180.0,
            test_duration_s=60.0,
            n_train_donors=2,
            n_test_donors=1,
            donor_duration_s=60.0,
        )
        return replace(base, **overrides)


@dataclass(frozen=True)
class SubjectRunResult:
    """Per-subject outcome: reference and device reports side by side."""

    subject_id: str
    version: DetectorVersion
    reference_report: DetectionReport
    device_report: DetectionReport | None
    n_test_windows: int
    runner: AmuletSIFTRunner | None = field(default=None, repr=False, compare=False)


def make_dataset(config: ExperimentConfig) -> SyntheticFantasia:
    """The synthetic cohort for a configuration."""
    return SyntheticFantasia(
        n_subjects=config.n_subjects,
        seed=config.seed,
        sample_rate=config.sample_rate,
    )


def record_cache_key(
    config: ExperimentConfig, subject_id: str, duration: float, purpose: str
) -> tuple:
    """The experiment-cache key of one realized recording.

    Shared between :func:`realize_record` and the dataset plane
    (:mod:`repro.experiments.dataplane`): the plane publishes records
    under these keys and workers look them up under the same ones, so
    the two sides cannot drift.
    """
    return (
        "record",
        config.n_subjects,
        config.seed,
        config.sample_rate,
        config.peak_source,
        subject_id,
        float(duration),
        purpose,
    )


def realize_record(
    dataset: SyntheticFantasia,
    subject: SubjectParameters,
    duration: float,
    purpose: str,
    config: ExperimentConfig,
) -> Record:
    """A recording with peak indexes per the configured peak source.

    Synthesis (and peak re-detection) is deterministic in the cache key,
    so the result is cached: every experiment sharing a config reuses the
    same cohort recordings instead of re-synthesizing them.
    """
    key = record_cache_key(config, subject.subject_id, duration, purpose)

    def build() -> Record:
        record = dataset.record(subject, duration, purpose=purpose)
        if config.peak_source == "detected":
            return record.redetect_peaks()
        return record

    return EXPERIMENT_CACHE.get_or_create(key, build)


# Backwards-compatible module-private alias (older call sites and tests).
_record = realize_record


def cohort_record_specs(
    config: ExperimentConfig,
    dataset: SyntheticFantasia,
    subjects: "list[int] | None" = None,
) -> dict[tuple, tuple[SubjectParameters, float, str]]:
    """The recordings a cohort run touches, keyed by record cache key.

    For each subject index (default: the whole cohort) this covers what
    :func:`run_subject` consumes: the training and test records plus the
    train-donor and test-donor records of the subject's donor split.
    Values are ``(subject, duration, purpose)`` triples ready to pass to
    :func:`realize_record`.
    """
    indices = (
        range(len(dataset.subjects)) if subjects is None else subjects
    )
    specs: dict[tuple, tuple[SubjectParameters, float, str]] = {}

    def add(subject: SubjectParameters, duration: float, purpose: str) -> None:
        key = record_cache_key(config, subject.subject_id, duration, purpose)
        specs.setdefault(key, (subject, float(duration), purpose))

    for index in indices:
        subject = dataset.subjects[index]
        train_donors, test_donors = _donor_split(dataset, subject, config)
        add(subject, config.train_duration_s, "train")
        add(subject, config.test_duration_s, "test")
        for donor in train_donors:
            add(donor, config.donor_duration_s, "train")
        for donor in test_donors:
            add(donor, config.donor_duration_s, "test")
    return specs


def _donor_split(
    dataset: SyntheticFantasia, subject: SubjectParameters, config: ExperimentConfig
) -> tuple[list[SubjectParameters], list[SubjectParameters]]:
    """Disjoint train/test donor subjects, rotating around the cohort.

    Train donors supply the positive class at training time; *different*
    subjects supply the attack ECG at test time, so the evaluation never
    tests on the donors the model was trained against.
    """
    others = [s for s in dataset.subjects if s is not subject]
    index = dataset.subjects.index(subject)
    rotated = others[index % len(others) :] + others[: index % len(others)]
    train_donors = rotated[: config.n_train_donors]
    test_donors = rotated[
        config.n_train_donors : config.n_train_donors + config.n_test_donors
    ]
    return train_donors, test_donors


def build_stream(
    dataset: SyntheticFantasia,
    subject: SubjectParameters,
    config: ExperimentConfig,
) -> LabeledStream:
    """The subject's labelled 2-minute evaluation stream.

    Cached per (config, subject): stream construction seeds a fresh RNG
    from the config, so rebuilding is deterministic and every version's
    evaluation can share one stream object.
    """

    def build() -> LabeledStream:
        _, test_donors = _donor_split(dataset, subject, config)
        test_record = _record(
            dataset, subject, config.test_duration_s, "test", config
        )
        donor_records = [
            _record(dataset, donor, config.donor_duration_s, "test", config)
            for donor in test_donors
        ]
        scenario = AttackScenario(
            ReplacementAttack(donor_records),
            window_s=config.window_s,
            altered_fraction=config.altered_fraction,
        )
        rng = np.random.default_rng(
            [config.scenario_seed, dataset.subjects.index(subject)]
        )
        return scenario.build(test_record, rng)

    key = ("stream", config, subject.subject_id)
    return EXPERIMENT_CACHE.get_or_create(key, build)


def train_detector(
    dataset: SyntheticFantasia,
    subject: SubjectParameters,
    version: DetectorVersion | str,
    config: ExperimentConfig,
) -> SIFTDetector:
    """Train one user-specific detector per the paper's protocol.

    Cached per (config, subject, version): training re-seeds every RNG
    from the config, so identical keys would train identical models --
    table2/table3/fig3 and the ablations share them instead.
    """
    if isinstance(version, str):
        version = DetectorVersion.from_name(version)

    def build() -> SIFTDetector:
        train_donors, _ = _donor_split(dataset, subject, config)
        training_record = _record(
            dataset, subject, config.train_duration_s, "train", config
        )
        donor_records = [
            _record(dataset, donor, config.donor_duration_s, "train", config)
            for donor in train_donors
        ]
        detector = SIFTDetector(
            version=version,
            window_s=config.window_s,
            grid_n=config.grid_n,
            C=config.svm_c,
            kernel=config.kernel,
            gamma=config.svm_gamma,
        )
        rng = np.random.default_rng(
            [config.seed, dataset.subjects.index(subject), 99]
        )
        detector.fit(
            training_record, donor_records, stride_s=config.train_stride_s, rng=rng
        )
        return detector

    key = ("detector", config, subject.subject_id, version.value)
    return EXPERIMENT_CACHE.get_or_create(key, build)


def run_subject(
    dataset: SyntheticFantasia,
    subject: SubjectParameters,
    version: DetectorVersion | str,
    config: ExperimentConfig | None = None,
    with_device: bool = True,
    chunk_size: int | None = None,
) -> SubjectRunResult:
    """The full per-subject protocol for one detector version.

    ``chunk_size`` sets how many windows the reference evaluation scores
    per chunk (``None`` = the detector's default); scores are
    bit-identical at any chunk size, only peak memory changes.
    """
    config = config or ExperimentConfig()
    if isinstance(version, str):
        version = DetectorVersion.from_name(version)
    detector = train_detector(dataset, subject, version, config)
    stream = build_stream(dataset, subject, config)
    reference_report = detector.evaluate(stream, chunk_size=chunk_size)

    device_report = None
    runner = None
    if with_device:
        runner = AmuletSIFTRunner(detector, frac_bits=config.frac_bits)
        device_report = runner.run_stream(stream).report
    return SubjectRunResult(
        subject_id=subject.subject_id,
        version=version,
        reference_report=reference_report,
        device_report=device_report,
        n_test_windows=len(stream),
        runner=runner,
    )
