"""Checkpointed experiment orchestrator with a persisted perf trajectory.

The paper's evaluation is a matrix of one-shot studies (Table II/III,
Fig. 3, the ablations, the fault matrix, the universal-model question).
Before this module each study had its own entry point and no memory: a
crashed sweep restarted from zero, a tweaked report needed a full
recompute, and five PRs of speed work (batching, chunking, the
shared-memory dataplane) left no run-over-run record of what they bought.

The orchestrator fixes all three with one driver:

* **Checkpointed units.**  Every study is decomposed into *units* -- one
  detector version of Table II, one ablation sweep, one fault of the
  fault matrix.  Each completed unit appends one JSONL line (its config
  hash, JSON payload, wall-clock, cache and dataplane counter deltas) to
  ``benchmarks/results/checkpoints/<study>.jsonl``, flushed and fsynced
  before the next unit starts.  Re-running skips every unit whose
  checkpoint carries the current config hash, so an interrupted sweep
  resumes mid-matrix, recomputing only the unit it died in.
* **Reports from payloads.**  Report files are rendered from the JSON
  payloads (round-tripped through ``json`` even on the first run), so a
  resumed run's reports are bit-identical to an uninterrupted run's, and
  ``reeval=True`` regenerates every report with zero recomputation.
* **Perf trajectory.**  A completed run emits ``BENCH_<stamp>.json``:
  per-study wall-clock, windows/second, experiment-cache hit/miss/
  eviction deltas and dataset-plane publish/attach time, plus a machine
  calibration constant so trajectories from different hosts compare.
  :func:`compare_trajectories` is the CI regression gate over two such
  records.

Checkpoint *invalidation* is content-keyed, like the experiment cache:
a unit's hash covers every protocol knob that influences its numbers
(the full :class:`~repro.experiments.pipeline.ExperimentConfig` plus the
unit's own sweep values) and excludes the knobs that provably do not
(``jobs`` -- cohort results are bit-identical at any worker count).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.versions import DetectorVersion
from repro.experiments import dataplane
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.experiments.pipeline import ExperimentConfig, SubjectRunResult
from repro.experiments.reporting import format_bar_chart, format_table
from repro.ml.metrics import DetectionReport

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "MissingCheckpointError",
    "Orchestrator",
    "OrchestratorRun",
    "StudyContext",
    "StudyDefinition",
    "StudyRun",
    "UnitOutcome",
    "UnitSpec",
    "build_registry",
    "compare_trajectories",
    "config_hash",
    "drain_perf_samples",
    "load_trajectory",
    "record_perf_sample",
    "study_names",
    "trajectory_from_samples",
    "write_trajectory",
]

#: Schema version stamped into every checkpoint line and trajectory file.
SCHEMA = 1

#: Default on-disk locations, relative to the repository root (the CLI
#: and the benches run from there; tests pass explicit directories).
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"
DEFAULT_CHECKPOINT_DIR = DEFAULT_RESULTS_DIR / "checkpoints"


class CheckpointError(RuntimeError):
    """Base class for checkpoint-layer failures."""


class MissingCheckpointError(CheckpointError):
    """``reeval`` asked for a unit that was never computed (or whose
    config hash no longer matches the requested configuration)."""


# ----------------------------------------------------------------------
# Config hashing
# ----------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """``value`` reduced to JSON-stable primitives for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    if isinstance(value, DetectorVersion):
        return value.value
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"unhashable unit parameter: {value!r}")


def config_hash(params: Any) -> str:
    """A stable content hash of a unit's parameters.

    Canonical JSON (sorted keys, no whitespace) through SHA-256: the
    same parameters hash identically across processes and Python
    versions, and any change to any protocol knob changes the hash --
    which is what invalidates a stale checkpoint.
    """
    canonical = json.dumps(
        _jsonable(params), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------


class CheckpointStore:
    """One JSONL checkpoint file per study, append-only, crash-tolerant.

    Each line is one completed unit: ``{"schema", "unit", "config_hash",
    "payload", "wall_s", "cache", "dataplane", "completed_at"}``.
    Appends are flushed *and* fsynced so a unit that completed before a
    kill is never lost; a line truncated by the kill itself is skipped
    (with the units it would have described simply recomputed).  The
    latest line per unit wins, so recomputing a unit under a new config
    hash supersedes its stale checkpoint without rewriting the file.
    """

    def __init__(self, directory: Path | str = DEFAULT_CHECKPOINT_DIR):
        self.directory = Path(directory)

    def path(self, study: str) -> Path:
        """The study's JSONL checkpoint file."""
        return self.directory / f"{study.replace('/', '_')}.jsonl"

    def load(self, study: str) -> dict[str, dict[str, Any]]:
        """The latest checkpoint record per unit name (empty if none)."""
        path = self.path(study)
        if not path.exists():
            return {}
        records: dict[str, dict[str, Any]] = {}
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-append truncates at most the last line;
                    # the unit it described simply recomputes.
                    continue
                if isinstance(record, dict) and "unit" in record:
                    records[str(record["unit"])] = record
        return records

    def append(self, study: str, record: Mapping[str, Any]) -> None:
        """Durably append one completed unit's record."""
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with self.path(study).open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def remove(self, study: str) -> None:
        """Drop a study's checkpoints (``fresh`` runs recompute)."""
        try:
            self.path(study).unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Study model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StudyContext:
    """Everything a study needs to enumerate and run its units."""

    config: ExperimentConfig
    quick: bool = False
    jobs: int = 1


@dataclass(frozen=True)
class UnitSpec:
    """One checkpointable unit of a study.

    ``params`` must cover every knob that influences ``run``'s payload
    (it is what gets hashed); ``run`` returns a JSON-serializable
    payload, with an optional ``"n_windows"`` key counting the windows
    the unit scored (feeds the trajectory's windows/sec).
    """

    name: str
    params: Mapping[str, Any]
    run: Callable[[StudyContext], Mapping[str, Any]]


@dataclass(frozen=True)
class StudyDefinition:
    """A named study: how to split it into units and render its reports.

    ``render`` receives the unit payloads (in unit order, every value
    JSON-round-tripped) and returns ``{report_name: text}``; report
    files land in the results directory as ``<report_name>.txt``.
    """

    name: str
    build_units: Callable[[StudyContext], Sequence[UnitSpec]]
    render: Callable[[StudyContext, dict[str, Any]], dict[str, str]]


@dataclass(frozen=True)
class UnitOutcome:
    """One unit's disposition within a study run."""

    name: str
    config_hash: str
    payload: Any
    wall_s: float
    cached: bool
    cache: dict[str, int] = field(default_factory=dict)
    dataplane: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class StudyRun:
    """One study's units plus the report files it produced."""

    name: str
    units: tuple[UnitOutcome, ...]
    reports: dict[str, Path]

    @property
    def wall_s(self) -> float:
        """Wall-clock actually spent computing (cached units cost ~0)."""
        return sum(u.wall_s for u in self.units if not u.cached)

    @property
    def recomputed_units(self) -> int:
        return sum(1 for u in self.units if not u.cached)

    @property
    def n_windows(self) -> int:
        """Windows scored by recomputed units (0 when unreported)."""
        return sum(
            int(u.payload.get("n_windows", 0))
            for u in self.units
            if not u.cached and isinstance(u.payload, Mapping)
        )


@dataclass(frozen=True)
class OrchestratorRun:
    """Everything one ``Orchestrator.run`` produced."""

    studies: tuple[StudyRun, ...]
    trajectory: dict[str, Any] | None
    trajectory_path: Path | None


# ----------------------------------------------------------------------
# Payload <-> report helpers
# ----------------------------------------------------------------------


def _report_dict(report: DetectionReport) -> dict[str, float]:
    return {
        "false_positive_rate": report.false_positive_rate,
        "false_negative_rate": report.false_negative_rate,
        "accuracy": report.accuracy,
        "f1": report.f1,
    }


def _report_from(payload: Mapping[str, Any]) -> DetectionReport:
    return DetectionReport(
        false_positive_rate=float(payload["false_positive_rate"]),
        false_negative_rate=float(payload["false_negative_rate"]),
        accuracy=float(payload["accuracy"]),
        f1=float(payload["f1"]),
    )


def _float_table(rows: Iterable[Mapping[str, Any]], columns: Sequence[str]) -> str:
    """The benches' table layout: ``%.4g`` floats, verbatim strings."""
    return format_table(
        list(columns),
        [
            [
                f"{row[c]:.4g}" if isinstance(row[c], float) else str(row[c])
                for c in columns
            ]
            for row in rows
        ],
    )


def _config_params(config: ExperimentConfig) -> dict[str, Any]:
    return dataclasses.asdict(config)


# ----------------------------------------------------------------------
# Study definitions
# ----------------------------------------------------------------------


def _table2_units(ctx: StudyContext) -> list[UnitSpec]:
    def run_version(version: DetectorVersion):
        def run(ctx: StudyContext) -> dict[str, Any]:
            from repro.experiments.table2 import run_table2

            result = run_table2(
                ctx.config, versions=(version,), jobs=ctx.jobs
            )
            return {
                "version": version.value,
                "rows": [
                    {
                        "platform": row.platform,
                        "report": _report_dict(row.report),
                    }
                    for row in result.rows
                ],
                "per_subject": [
                    {
                        "subject_id": r.subject_id,
                        "reference": _report_dict(r.reference_report),
                        "device": (
                            _report_dict(r.device_report)
                            if r.device_report is not None
                            else None
                        ),
                        "n_test_windows": r.n_test_windows,
                    }
                    for r in result.per_subject
                ],
                "failures": [
                    {"subject_id": f.subject_id, "error": f.error}
                    for f in result.failures
                ],
                # Each stream is scored on both platforms.
                "n_windows": 2 * sum(
                    r.n_test_windows for r in result.per_subject
                ),
            }

        return run

    return [
        UnitSpec(
            name=version.value,
            params={
                "study": "table2",
                "config": _config_params(ctx.config),
                "version": version.value,
            },
            run=run_version(version),
        )
        for version in DetectorVersion
    ]


def _table2_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    from repro.experiments.table2 import (
        Table2Result,
        Table2Row,
        format_table2,
        format_table2_by_subject,
    )

    rows: list[Table2Row] = []
    per_subject: list[SubjectRunResult] = []
    for payload in payloads.values():
        version = DetectorVersion.from_name(payload["version"])
        for row in payload["rows"]:
            rows.append(
                Table2Row(
                    version=version,
                    platform=row["platform"],
                    report=_report_from(row["report"]),
                )
            )
        for subject in payload["per_subject"]:
            per_subject.append(
                SubjectRunResult(
                    subject_id=subject["subject_id"],
                    version=version,
                    reference_report=_report_from(subject["reference"]),
                    device_report=(
                        _report_from(subject["device"])
                        if subject["device"] is not None
                        else None
                    ),
                    n_test_windows=int(subject["n_test_windows"]),
                )
            )
    result = Table2Result(
        rows=tuple(rows),
        per_subject=tuple(per_subject),
        config=ctx.config,
    )
    return {
        "table2": format_table2(result),
        "table2_by_subject": format_table2_by_subject(result),
    }


def _table3_units(ctx: StudyContext) -> list[UnitSpec]:
    def run_version(version: DetectorVersion):
        def run(ctx: StudyContext) -> dict[str, Any]:
            from repro.experiments.table3 import run_table3

            profile = run_table3(ctx.config, versions=(version,)).profiles[
                version
            ]
            return {
                "version": version.value,
                "system_fram_kb": profile.system_fram_kb,
                "app_fram_kb": profile.app_fram_kb,
                "system_sram_bytes": profile.system_sram_bytes,
                "app_sram_bytes": profile.app_sram_bytes,
                "lifetime_days": profile.lifetime_days,
            }

        return run

    return [
        UnitSpec(
            name=version.value,
            params={
                "study": "table3",
                "config": _config_params(ctx.config),
                "version": version.value,
            },
            run=run_version(version),
        )
        for version in DetectorVersion
    ]


def _table3_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    from repro.experiments.table3 import PAPER_TABLE3

    headers = ["Version", "Resource Type", "Measurements", "(paper)"]
    body = []
    for payload in payloads.values():
        paper = PAPER_TABLE3.get(payload["version"])
        rows = [
            (
                "Memory Use (FRAM)",
                f"{payload['system_fram_kb']:.2f} KB_sys + "
                f"{payload['app_fram_kb']:.2f} KB_det",
                f"{paper[0]:.2f} + {paper[1]:.2f} KB" if paper else "-",
            ),
            (
                "Max Ram Use (SRAM)",
                f"{payload['system_sram_bytes']} B_sys + "
                f"{payload['app_sram_bytes']} B_det",
                f"{paper[2]} + {paper[3]} B" if paper else "-",
            ),
            (
                "Expected Lifetime",
                f"{payload['lifetime_days']:.0f} days",
                f"{paper[4]} days" if paper else "-",
            ),
        ]
        for i, (resource, measured, paper_text) in enumerate(rows):
            body.append(
                [
                    payload["version"].capitalize() if i == 0 else "",
                    resource,
                    measured,
                    paper_text,
                ]
            )
    return {
        "table3": format_table(
            headers,
            body,
            title="TABLE III: Resource Usage of Three Versions of Detector",
        )
    }


def _fig3_units(ctx: StudyContext) -> list[UnitSpec]:
    grids = (10, 50) if ctx.quick else (10, 25, 50, 100)

    def run_profile(ctx: StudyContext) -> dict[str, Any]:
        from repro.experiments.fig3 import run_fig3

        result = run_fig3(ctx.config)
        return {
            "version": result.version.value,
            "top_consumers": [
                [name, current] for name, current in result.top_consumers()
            ],
            "period_sweep": [
                [period, days]
                for period, days in sorted(result.period_sweep.items())
            ],
            "average_current_ma": result.profile.average_current_ma,
            "period_s": result.profile.period_s,
            "lifetime_days": result.profile.lifetime_days,
        }

    def run_grid_sweep(ctx: StudyContext) -> dict[str, Any]:
        from repro.experiments.fig3 import run_grid_resource_sweep

        rows = run_grid_resource_sweep(ctx.config, grids=grids, jobs=ctx.jobs)
        return {"rows": rows}

    return [
        UnitSpec(
            name="profile",
            params={
                "study": "fig3",
                "config": _config_params(ctx.config),
                "version": DetectorVersion.ORIGINAL.value,
            },
            run=run_profile,
        ),
        UnitSpec(
            name="grid_sweep",
            params={
                "study": "fig3",
                "config": _config_params(ctx.config),
                "grids": list(grids),
                "version": DetectorVersion.SIMPLIFIED.value,
            },
            run=run_grid_sweep,
        ),
    ]


def _fig3_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    profile = payloads["profile"]
    chart = format_bar_chart(
        [(name, current) for name, current in profile["top_consumers"]],
        unit=" mA",
        title=(
            f"Fig. 3: Resource Consumption of SIFT app "
            f"({profile['version']} version)"
        ),
    )
    slider = format_table(
        ["Detection period (s)", "Expected lifetime (days)"],
        [
            [f"{period:g}", f"{days:.1f}"]
            for period, days in profile["period_sweep"]
        ],
        title="ARP-view slider: battery life vs detection period",
    )
    summary = (
        f"average current: {profile['average_current_ma']:.4f} mA | "
        f"lifetime at {profile['period_s']:g} s period: "
        f"{profile['lifetime_days']:.1f} days"
    )
    sweep_table = format_table(
        ["grid_n", "deployable", "det FRAM KB", "Mcyc/win", "days"],
        [
            [
                f"{row['grid_n']:g}",
                "yes" if row["deployable"] else "NO (array limit)",
                f"{row['detector_fram_kb']:.2f}",
                f"{row['mcycles_per_window']:.2f}",
                f"{row['lifetime_days']:.1f}",
            ]
            for row in payloads["grid_sweep"]["rows"]
        ],
    )
    return {
        "fig3": "\n\n".join([chart, slider, summary]),
        "fig3_grid_resource_sweep": sweep_table,
    }


#: (ablation name, callable path, sweep kwarg, quick sweep, full sweep,
#: takes jobs, report columns).  Sweeps are trimmed in quick mode so the
#: orchestrator smoke stays a smoke.
_ABLATIONS: tuple[tuple[str, str, str | None, tuple, tuple, bool, tuple[str, ...]], ...] = (
    (
        "window_size", "window_size_ablation", "window_values",
        (1.5, 3.0), (1.5, 3.0, 6.0, 12.0), True,
        ("window_s", "accuracy", "fp_rate", "fn_rate", "f1"),
    ),
    (
        "grid_size", "grid_size_ablation", "grid_values",
        (10, 50), (10, 25, 50, 100), True,
        ("grid_n", "accuracy", "fp_rate", "fn_rate", "f1"),
    ),
    (
        "training_duration", "training_duration_ablation", "durations_s",
        (60.0, 180.0), (120.0, 300.0, 600.0, 1200.0), True,
        ("train_duration_s", "accuracy", "fp_rate", "fn_rate", "f1"),
    ),
    (
        "feature_classes", "feature_class_ablation", None,
        (), (), True,
        ("features", "n_features", "accuracy", "f1"),
    ),
    (
        "classifier", "classifier_ablation", None,
        (), (), False,
        ("classifier", "accuracy", "f1"),
    ),
    (
        "fixed_point", "fixed_point_ablation", "frac_bits_values",
        (4, 14), (4, 6, 8, 10, 14, 20), False,
        ("frac_bits", "accuracy", "agreement_with_float"),
    ),
    (
        "attack_types", "attack_type_ablation", None,
        (), (), False,
        ("attack", "accuracy", "fn_rate", "fp_rate"),
    ),
    (
        "mixed_attack_training", "mixed_attack_training_ablation", None,
        (), (), False,
        ("training", "eval_attack", "accuracy", "fn_rate", "fp_rate"),
    ),
)


def _ablation_units(ctx: StudyContext) -> list[UnitSpec]:
    import repro.experiments.ablations as ablations_module

    units = []
    for name, func_name, sweep_kwarg, quick_sweep, full_sweep, takes_jobs, _ in _ABLATIONS:
        sweep = quick_sweep if ctx.quick else full_sweep

        def make_run(func_name=func_name, sweep_kwarg=sweep_kwarg,
                     sweep=sweep, takes_jobs=takes_jobs):
            def run(ctx: StudyContext) -> dict[str, Any]:
                func = getattr(ablations_module, func_name)
                kwargs: dict[str, Any] = {}
                if sweep_kwarg is not None:
                    kwargs[sweep_kwarg] = sweep
                if takes_jobs:
                    kwargs["jobs"] = ctx.jobs
                return {"rows": func(ctx.config, **kwargs)}

            return run

        params: dict[str, Any] = {
            "study": "ablations",
            "ablation": name,
            "config": _config_params(ctx.config),
        }
        if sweep_kwarg is not None:
            params["sweep"] = list(sweep)
        units.append(UnitSpec(name=name, params=params, run=make_run()))
    return units


def _ablation_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    columns = {name: cols for name, _, _, _, _, _, cols in _ABLATIONS}
    return {
        f"ablation_{name}": _float_table(payload["rows"], columns[name])
        for name, payload in payloads.items()
    }


def _fault_matrix_units(ctx: StudyContext) -> list[UnitSpec]:
    from repro.faults import fault_names

    severities = (0.0, 0.5, 1.0) if ctx.quick else (0.0, 0.25, 0.5, 1.0)

    def make_run(fault: str):
        def run(ctx: StudyContext) -> dict[str, Any]:
            from repro.experiments.robustness import fault_matrix_study

            rows = fault_matrix_study(
                ctx.config, faults=(fault,), severities=severities
            )
            return {"rows": rows}

        return run

    return [
        UnitSpec(
            name=fault,
            params={
                "study": "fault-matrix",
                "fault": fault,
                "severities": list(severities),
                "config": _config_params(ctx.config),
            },
            run=make_run(fault),
        )
        for fault in fault_names()
    ]


def _fault_matrix_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    from repro.experiments.robustness import format_fault_matrix

    rows = [row for payload in payloads.values() for row in payload["rows"]]
    return {"fault_matrix": format_fault_matrix(rows)}


def _universal_units(ctx: StudyContext) -> list[UnitSpec]:
    def run(ctx: StudyContext) -> dict[str, Any]:
        from repro.experiments.universal import run_universal_study

        study = run_universal_study(ctx.config)
        return {
            "per_user": _report_dict(study.per_user),
            "universal": _report_dict(study.universal),
            "per_subject_universal": [
                [subject_id, _report_dict(report)]
                for subject_id, report in study.per_subject_universal.items()
            ],
        }

    return [
        UnitSpec(
            name="loso",
            params={
                "study": "universal",
                "config": _config_params(ctx.config),
            },
            run=run,
        )
    ]


def _universal_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    payload = payloads["loso"]
    rows = [
        [
            label,
            f"{100 * report['false_positive_rate']:.2f}",
            f"{100 * report['false_negative_rate']:.2f}",
            f"{100 * report['accuracy']:.2f}",
        ]
        for label, report in (
            ("per-user (paper)", payload["per_user"]),
            ("universal (LOSO)", payload["universal"]),
        )
    ]
    per_subject = "\n".join(
        f"  {subject_id}: {100 * report['accuracy']:.1f}%"
        for subject_id, report in payload["per_subject_universal"]
    )
    return {
        "universal_model": (
            format_table(["training", "FP %", "FN %", "Acc %"], rows)
            + "\n\nper-held-out-subject universal accuracy:\n"
            + per_subject
        )
    }


#: (robustness study, callable name, report name, report columns).
_ROBUSTNESS: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
    (
        "channel_loss", "channel_loss_study", "robustness_channel_loss",
        ("loss_probability", "window_coverage", "accuracy_on_classified"),
    ),
    (
        "artifact_load", "artifact_load_study", "robustness_artifact_load",
        ("artifact_rate_per_min", "accuracy", "fp_rate", "fn_rate"),
    ),
    (
        "debounce", "debounce_study", "robustness_debounce",
        (
            "votes_needed", "vote_window", "window_accuracy",
            "false_episodes_per_run", "attack_catch_rate",
        ),
    ),
)


def _robustness_units(ctx: StudyContext) -> list[UnitSpec]:
    import repro.experiments.robustness as robustness_module

    def make_run(func_name: str):
        def run(ctx: StudyContext) -> dict[str, Any]:
            func = getattr(robustness_module, func_name)
            return {"rows": func(ctx.config)}

        return run

    return [
        UnitSpec(
            name=name,
            params={
                "study": "robustness",
                "sweep": name,
                "config": _config_params(ctx.config),
            },
            run=make_run(func_name),
        )
        for name, func_name, _, _ in _ROBUSTNESS
    ]


def _robustness_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    layout = {name: (report, cols) for name, _, report, cols in _ROBUSTNESS}
    return {
        layout[name][0]: _float_table(payload["rows"], layout[name][1])
        for name, payload in payloads.items()
    }


def _gateway_units(ctx: StudyContext) -> list[UnitSpec]:
    # Serving scale: quick keeps the orchestrator smoke a smoke; the
    # full run holds the issue's >= 1k concurrent wearers.
    n_wearers = 64 if ctx.quick else 1024
    stream_s = 12.0 if ctx.quick else 30.0
    batch_size = 256
    loss_probability = 0.02

    def run(ctx: StudyContext) -> dict[str, Any]:
        from repro.gateway import run_gateway_load

        report = run_gateway_load(
            n_wearers=n_wearers,
            stream_s=stream_s,
            batch_size=batch_size,
            loss_probability=loss_probability,
            seed=ctx.config.seed,
        )
        stats = report.stats
        return {
            "n_wearers": report.n_wearers,
            "wall_s": round(report.wall_s, 6),
            "windows_sent": report.windows_sent,
            "verdicts": stats.verdicts,
            "windows_scored": stats.windows_scored,
            "windows_abstained": stats.windows_abstained,
            "windows_shed": stats.windows_shed,
            "incomplete_windows": stats.incomplete_windows,
            "windows_vanished": report.windows_vanished,
            "episodes_closed": stats.episodes_closed,
            "mean_batch_size": round(stats.mean_batch_size, 3),
            "windows_per_s": round(report.windows_per_s, 3),
            "p50_ms": round(report.p50_latency_s * 1e3, 4),
            "p99_ms": round(report.p99_latency_s * 1e3, 4),
            "leaked_sessions": report.leaked_sessions,
            "n_windows": stats.verdicts,
        }

    return [
        UnitSpec(
            name="serving",
            params={
                "study": "gateway",
                "n_wearers": n_wearers,
                "stream_s": stream_s,
                "batch_size": batch_size,
                "loss_probability": loss_probability,
                "seed": ctx.config.seed,
            },
            run=run,
        )
    ]


def _gateway_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    payload = payloads["serving"]
    rows = [
        ["concurrent wearers", f"{payload['n_wearers']}"],
        ["windows sent", f"{payload['windows_sent']}"],
        [
            "verdicts",
            f"{payload['verdicts']} ({payload['windows_scored']} scored, "
            f"{payload['windows_abstained']} abstained)",
        ],
        ["windows shed", f"{payload['windows_shed']}"],
        [
            "incomplete windows",
            f"{payload['incomplete_windows']} "
            f"(+{payload.get('windows_vanished', 0)} vanished in channel)",
        ],
        ["episodes closed", f"{payload['episodes_closed']}"],
        ["mean batch size", f"{payload['mean_batch_size']:.1f}"],
        ["throughput", f"{payload['windows_per_s']:.0f} windows/s"],
        [
            "verdict latency",
            f"p50 {payload['p50_ms']:.2f} ms, p99 {payload['p99_ms']:.2f} ms",
        ],
        ["leaked sessions", f"{payload['leaked_sessions']}"],
    ]
    return {
        "gateway_serving": format_table(
            ["metric", "value"],
            rows,
            title="Ingestion gateway: multi-wearer serving load",
        )
    }


def _chaos_units(ctx: StudyContext) -> list[UnitSpec]:
    # Chaos scale: the schedules are invariant checks, not load tests --
    # quick and full differ only in fleet size / stream length so the
    # full run exercises more batches per fault.
    n_wearers = 8 if ctx.quick else 16
    stream_s = 12.0 if ctx.quick else 24.0

    from repro.faults.runtime import schedule_names

    def schedule_runner(schedule: str) -> Callable[[StudyContext], dict[str, Any]]:
        def run(ctx: StudyContext) -> dict[str, Any]:
            from repro.faults.runtime import run_chaos_schedule

            report = run_chaos_schedule(
                schedule,
                seed=ctx.config.seed,
                n_wearers=n_wearers,
                stream_s=stream_s,
                strict=False,
            )
            payload = report.to_payload()
            payload["n_windows"] = payload["verdicts"]
            return payload

        return run

    def run_restart(ctx: StudyContext) -> dict[str, Any]:
        import tempfile

        from repro.faults.runtime import run_restart_chaos

        with tempfile.TemporaryDirectory(prefix="chaos-restart-") as tmp:
            report = run_restart_chaos(
                Path(tmp) / "sessions.jsonl",
                seed=ctx.config.seed,
                strict=False,
            )
        payload = report.to_payload()
        payload["n_windows"] = report.n_wearers * report.n_windows_per_wearer
        return payload

    def run_truncation(ctx: StudyContext) -> dict[str, Any]:
        import tempfile

        from repro.faults.runtime import run_truncation_chaos

        with tempfile.TemporaryDirectory(prefix="chaos-trunc-") as tmp:
            report = run_truncation_chaos(tmp, seed=ctx.config.seed, strict=False)
        return report.to_payload()

    units = [
        UnitSpec(
            name=f"schedule-{schedule}",
            params={
                "study": "chaos",
                "schedule": schedule,
                "n_wearers": n_wearers,
                "stream_s": stream_s,
                "seed": ctx.config.seed,
            },
            run=schedule_runner(schedule),
        )
        for schedule in schedule_names()
    ]
    units.append(
        UnitSpec(
            name="restart",
            params={"study": "chaos", "unit": "restart", "seed": ctx.config.seed},
            run=run_restart,
        )
    )
    units.append(
        UnitSpec(
            name="truncation",
            params={"study": "chaos", "unit": "truncation", "seed": ctx.config.seed},
            run=run_truncation,
        )
    )
    return units


def _chaos_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    rows = []
    for name, payload in payloads.items():
        if not name.startswith("schedule-"):
            continue
        rows.append(
            [
                payload["schedule"],
                f"{payload['planned_faults']}",
                f"{payload['faults_detected']}",
                f"{payload['restarts']}",
                f"{payload['windows_degraded']}",
                f"{payload['windows_unscorable']}",
                "yes" if payload["conservation_ok"] else "NO",
                "ok" if payload["ok"] else "; ".join(payload["violations"]),
            ]
        )
    restart = payloads["restart"]
    truncation = payloads["truncation"]
    rows.append(
        [
            "restart",
            "1",
            "-",
            "1",
            "-",
            "-",
            "yes" if restart["bit_identical_outside_restart"] else "NO",
            "ok" if restart["ok"] else "; ".join(restart["violations"]),
        ]
    )
    rows.append(
        [
            "truncation",
            f"{truncation['points_checked']}",
            "-",
            "-",
            "-",
            "-",
            "yes",
            "ok" if truncation["ok"] else "; ".join(truncation["violations"]),
        ]
    )
    return {
        "chaos_matrix": format_table(
            [
                "schedule",
                "planned",
                "detected",
                "restarts",
                "degraded",
                "unscorable",
                "conserved",
                "verdict",
            ],
            rows,
            title="Runtime chaos: supervised gateway under seeded fault schedules",
        )
    }


def _native_units(ctx: StudyContext) -> list[UnitSpec]:
    # Native scale: throughput comparison needs a stream long enough to
    # swamp dispatch overhead; quick keeps it to a CI-smoke minute.
    stream_s = 60.0 if ctx.quick else 300.0
    train_s = 120.0

    def tier_runner(version_name: str) -> Callable[[StudyContext], dict[str, Any]]:
        def run(ctx: StudyContext) -> dict[str, Any]:
            from repro.core.detector import SIFTDetector
            from repro.native import native_status
            from repro.signals import SyntheticFantasia, iter_windows

            data = SyntheticFantasia(n_subjects=4, seed=ctx.config.seed)
            victim = data.subjects[0]
            others = data.subjects[1:]
            detector = SIFTDetector(version=version_name)
            detector.fit(
                data.record(victim, train_s, purpose="train"),
                [data.record(s, train_s / 2, purpose="train") for s in others],
            )
            record = data.record(victim, stream_s, purpose="test")
            windows = list(iter_windows(record, window_s=3.0))

            def best_of(fn: Callable[[], Any], rounds: int = 3) -> float:
                best = float("inf")
                for _ in range(rounds):
                    started = time.perf_counter()
                    fn()
                    best = min(best, time.perf_counter() - started)
                return best

            numpy_values = detector.decision_values(windows)
            numpy_wall = best_of(lambda: detector.decision_values(windows))
            payload: dict[str, Any] = {
                "n_windows": len(windows),
                "numpy_windows_per_s": round(len(windows) / numpy_wall, 3),
            }
            available, reason = native_status(version_name)
            payload["available"] = available
            if not available:
                # No toolchain (or no SVML for Original): still a valid
                # unit -- the payload records why there is no native lane.
                payload.update(reason=reason, speedup=None, bit_identical=None)
                return payload
            detector.platform = "native"
            if not detector.native_active:  # build failed; reason captured
                payload.update(
                    available=False,
                    reason=str(detector.native_error),
                    speedup=None,
                    bit_identical=None,
                )
                return payload
            native_values = detector.decision_values(windows)
            native_wall = best_of(lambda: detector.decision_values(windows))
            payload.update(
                reason="ok",
                bit_identical=bool(np.array_equal(numpy_values, native_values)),
                native_windows_per_s=round(len(windows) / native_wall, 3),
                speedup=round(numpy_wall / native_wall, 3),
            )
            return payload

        return run

    return [
        UnitSpec(
            name=version.value,
            params={
                "study": "native",
                "version": version.value,
                "stream_s": stream_s,
                "seed": ctx.config.seed,
            },
            run=tier_runner(version.value),
        )
        for version in DetectorVersion
    ]


def _native_render(ctx: StudyContext, payloads: dict[str, Any]) -> dict[str, str]:
    rows = []
    for name, payload in payloads.items():
        if payload.get("available"):
            rows.append(
                [
                    name,
                    f"{payload['numpy_windows_per_s']:.0f}",
                    f"{payload['native_windows_per_s']:.0f}",
                    f"{payload['speedup']:.2f}x",
                    "yes" if payload["bit_identical"] else "NO",
                ]
            )
        else:
            rows.append(
                [name, f"{payload['numpy_windows_per_s']:.0f}", "-", "-",
                 payload.get("reason", "unavailable")]
            )
    return {
        "native_speedup": format_table(
            ["tier", "numpy w/s", "native w/s", "speedup", "bit-identical"],
            rows,
            title="Native scoring core: generated-C hot path vs NumPy",
        )
    }


def build_registry() -> dict[str, StudyDefinition]:
    """The default study registry, in canonical run order."""
    return {
        "table2": StudyDefinition("table2", _table2_units, _table2_render),
        "table3": StudyDefinition("table3", _table3_units, _table3_render),
        "fig3": StudyDefinition("fig3", _fig3_units, _fig3_render),
        "ablations": StudyDefinition(
            "ablations", _ablation_units, _ablation_render
        ),
        "fault-matrix": StudyDefinition(
            "fault-matrix", _fault_matrix_units, _fault_matrix_render
        ),
        "universal": StudyDefinition(
            "universal", _universal_units, _universal_render
        ),
        "robustness": StudyDefinition(
            "robustness", _robustness_units, _robustness_render
        ),
        "gateway": StudyDefinition(
            "gateway", _gateway_units, _gateway_render
        ),
        "chaos": StudyDefinition("chaos", _chaos_units, _chaos_render),
        "native": StudyDefinition("native", _native_units, _native_render),
    }


def study_names() -> tuple[str, ...]:
    """The registered study names, in canonical run order."""
    return tuple(build_registry())


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------


def _calibration_s() -> float:
    """Seconds this machine takes for a fixed numpy workload.

    Stamped into every trajectory so two records from different hosts
    (or a CI runner on a noisy neighbour) compare on *calibrated*
    wall-clock: the regression gate divides each study's wall-clock by
    its trajectory's calibration constant.  Best-of-five of a seeded
    matmul chain sized to tens of milliseconds -- long enough that
    scheduler jitter doesn't swing the constant (a noisy calibration
    would inject the very noise it exists to remove), dominated by the
    same BLAS/cache machinery as the hot paths it normalizes.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((384, 384))
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(16):
            a @ a
        best = min(best, time.perf_counter() - started)
    return best


class Orchestrator:
    """The single checkpointed driver behind every study entry point.

    Parameters
    ----------
    config:
        Protocol configuration shared by every study (default: the
        paper's; ``quick=True`` without an explicit config uses
        :meth:`ExperimentConfig.quick`).
    quick:
        Trim the sweeps (ablation values, fault severities, grid sizes)
        to smoke size.  Affects unit *params*, so quick and full
        checkpoints never collide.
    jobs:
        Worker processes for the cohort-fanning units.  Not part of any
        config hash: results are bit-identical at any worker count.
    checkpoint_dir / results_dir:
        Where unit checkpoints and rendered reports live.
    registry:
        Study registry override (tests inject synthetic studies).
    echo:
        Per-unit progress sink (e.g. ``print``); ``None`` = silent.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        quick: bool = False,
        jobs: int = 1,
        checkpoint_dir: Path | str = DEFAULT_CHECKPOINT_DIR,
        results_dir: Path | str = DEFAULT_RESULTS_DIR,
        registry: Mapping[str, StudyDefinition] | None = None,
        echo: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if config is None:
            config = ExperimentConfig.quick() if quick else ExperimentConfig()
        self.context = StudyContext(config=config, quick=bool(quick), jobs=int(jobs))
        self.store = CheckpointStore(checkpoint_dir)
        self.results_dir = Path(results_dir)
        self.registry = dict(registry) if registry is not None else build_registry()
        self._echo = echo

    def echo(self, message: str) -> None:
        """Forward a progress line to the configured sink (if any)."""
        if self._echo is not None:
            self._echo(message)

    # -- single-study execution ----------------------------------------

    def run_study(
        self, name: str, reeval: bool = False, write_reports: bool = True
    ) -> StudyRun:
        """Run (or resume, or re-render) one study.

        Units whose checkpoint carries the current config hash are
        *skipped* -- their payloads come off disk.  ``reeval`` forbids
        computation entirely: a unit without a valid checkpoint raises
        :class:`MissingCheckpointError`.
        """
        try:
            definition = self.registry[name]
        except KeyError:
            known = ", ".join(self.registry)
            raise CheckpointError(f"unknown study {name!r} (known: {known})")
        specs = definition.build_units(self.context)
        existing = self.store.load(name)
        outcomes: list[UnitOutcome] = []
        for spec in specs:
            unit_hash = config_hash(spec.params)
            record = existing.get(spec.name)
            if record is not None and record.get("config_hash") == unit_hash:
                self.echo(f"[{name}] {spec.name}: checkpoint hit ({unit_hash})")
                outcomes.append(
                    UnitOutcome(
                        name=spec.name,
                        config_hash=unit_hash,
                        payload=record.get("payload"),
                        wall_s=float(record.get("wall_s", 0.0)),
                        cached=True,
                        cache=dict(record.get("cache", {})),
                        dataplane=dict(record.get("dataplane", {})),
                    )
                )
                continue
            if reeval:
                raise MissingCheckpointError(
                    f"study {name!r} unit {spec.name!r} has no checkpoint "
                    f"for hash {unit_hash} -- run without reeval first"
                )
            outcomes.append(self._run_unit(name, spec, unit_hash))
        payloads = {o.name: o.payload for o in outcomes}
        reports: dict[str, Path] = {}
        if write_reports:
            for report_name, text in definition.render(
                self.context, payloads
            ).items():
                self.results_dir.mkdir(parents=True, exist_ok=True)
                path = self.results_dir / f"{report_name}.txt"
                path.write_text(text + "\n")
                reports[report_name] = path
        return StudyRun(name=name, units=tuple(outcomes), reports=reports)

    def _run_unit(self, study: str, spec: UnitSpec, unit_hash: str) -> UnitOutcome:
        cache_before = EXPERIMENT_CACHE.stats()
        plane_before = dataplane.perf_stats()
        started = time.perf_counter()
        payload = spec.run(self.context)
        wall_s = time.perf_counter() - started
        # Round-trip through JSON *now* so the first run renders from
        # exactly what a resumed run will load (tuples become lists,
        # keys become strings): reports stay bit-identical either way.
        payload = json.loads(json.dumps(payload))
        cache_after = EXPERIMENT_CACHE.stats()
        plane_after = dataplane.perf_stats()
        cache_delta = {
            key: int(cache_after[key]) - int(cache_before[key])
            for key in ("hits", "misses", "evictions")
        }
        plane_delta = {
            key: round(plane_after[key] - plane_before[key], 6)
            for key in ("publishes", "publish_s", "attaches", "attach_s")
        }
        record = {
            "schema": SCHEMA,
            "unit": spec.name,
            "config_hash": unit_hash,
            "payload": payload,
            "wall_s": round(wall_s, 6),
            "cache": cache_delta,
            "dataplane": plane_delta,
            "completed_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        self.store.append(study, record)
        self.echo(f"[{study}] {spec.name}: computed in {wall_s:.2f}s")
        return UnitOutcome(
            name=spec.name,
            config_hash=unit_hash,
            payload=payload,
            wall_s=wall_s,
            cached=False,
            cache=cache_delta,
            dataplane=plane_delta,
        )

    # -- full runs ------------------------------------------------------

    def run(
        self,
        studies: Sequence[str] | None = None,
        reeval: bool = False,
        fresh: bool = False,
        write_reports: bool = True,
        trajectory: bool = True,
    ) -> OrchestratorRun:
        """Run the study matrix (default: every registered study).

        ``fresh`` drops the selected studies' checkpoints first;
        ``reeval`` renders reports from checkpoints alone (zero
        recomputation, no trajectory).  On completion a ``BENCH_<stamp>
        .json`` perf trajectory lands in the results directory (also
        copied to ``BENCH_latest.json`` for the CI gate).
        """
        names = list(studies) if studies is not None else list(self.registry)
        if fresh:
            if reeval:
                raise CheckpointError("fresh and reeval are contradictory")
            for name in names:
                self.store.remove(name)
        runs = tuple(
            self.run_study(name, reeval=reeval, write_reports=write_reports)
            for name in names
        )
        record: dict[str, Any] | None = None
        path: Path | None = None
        recomputed = sum(run.recomputed_units for run in runs)
        if trajectory and not reeval and recomputed > 0:
            # A fully-cached run measured nothing; writing its ~0s
            # trajectory would clobber BENCH_latest.json with a record
            # the regression gate can only skip.
            record = self._build_trajectory(runs)
            path = write_trajectory(record, self.results_dir)
            self.echo(f"perf trajectory: {path}")
        return OrchestratorRun(studies=runs, trajectory=record, trajectory_path=path)

    def _build_trajectory(self, runs: Sequence[StudyRun]) -> dict[str, Any]:
        studies: dict[str, Any] = {}
        for run in runs:
            wall_s = run.wall_s
            n_windows = run.n_windows
            cache = {"hits": 0, "misses": 0, "evictions": 0}
            plane = {"publishes": 0, "publish_s": 0.0, "attaches": 0, "attach_s": 0.0}
            # Serving studies report a tail latency; the worst recomputed
            # unit's p99 is the study's (a sum would be meaningless).
            p99_ms = 0.0
            for unit in run.units:
                if unit.cached:
                    continue
                for key in cache:
                    cache[key] += int(unit.cache.get(key, 0))
                for key in plane:
                    plane[key] += unit.dataplane.get(key, 0)
                if isinstance(unit.payload, Mapping):
                    p99_ms = max(p99_ms, float(unit.payload.get("p99_ms", 0.0)))
            studies[run.name] = {
                "p99_ms": round(p99_ms, 4),
                "wall_s": round(wall_s, 6),
                "units": len(run.units),
                "recomputed_units": run.recomputed_units,
                "cached_units": len(run.units) - run.recomputed_units,
                "n_windows": n_windows,
                "windows_per_s": (
                    round(n_windows / wall_s, 3) if wall_s > 0 and n_windows else 0.0
                ),
                "cache": cache,
                "dataplane": {
                    "publishes": int(plane["publishes"]),
                    "publish_s": round(plane["publish_s"], 6),
                    "attaches": int(plane["attaches"]),
                    "attach_s": round(plane["attach_s"], 6),
                },
                "units_detail": [
                    {
                        "unit": unit.name,
                        "wall_s": round(unit.wall_s, 6),
                        "cached": unit.cached,
                    }
                    for unit in run.units
                ],
            }
        return {
            "schema": SCHEMA,
            "label": "orchestrate",
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "quick": self.context.quick,
            "jobs": self.context.jobs,
            "python": sys.version.split()[0],
            "calibration_s": round(_calibration_s(), 6),
            "studies": studies,
        }


# ----------------------------------------------------------------------
# Perf samples (the benches' route into the trajectory)
# ----------------------------------------------------------------------

#: Process-local samples recorded by ``benchmarks/conftest.run_once``.
_PERF_SAMPLES: list[dict[str, Any]] = []


def record_perf_sample(
    study: str,
    unit: str,
    wall_s: float,
    n_windows: int = 0,
    p99_ms: float = 0.0,
    **extra: Any,
) -> None:
    """Record one bench measurement for the session's trajectory.

    ``p99_ms`` is the serving-path tail latency (0 = not a serving
    measurement); it feeds the trajectory's per-study ``p99_ms`` and the
    regression gate's latency check.  Any further keyword fields (e.g.
    the native bench's measured ``speedup``) ride along into the unit's
    ``units_detail`` entry verbatim -- they must be JSON-serializable.
    """
    _PERF_SAMPLES.append(
        {
            "study": str(study),
            "unit": str(unit),
            "wall_s": float(wall_s),
            "n_windows": int(n_windows),
            "p99_ms": float(p99_ms),
            **{str(key): value for key, value in extra.items()},
        }
    )


def drain_perf_samples() -> list[dict[str, Any]]:
    """All samples recorded so far (clearing the buffer)."""
    samples, _PERF_SAMPLES[:] = list(_PERF_SAMPLES), []
    return samples


def trajectory_from_samples(
    samples: Sequence[Mapping[str, Any]],
    label: str = "bench",
    quick: bool = False,
    jobs: int = 1,
) -> dict[str, Any]:
    """Aggregate raw perf samples into a trajectory record."""
    studies: dict[str, Any] = {}
    for sample in samples:
        study = studies.setdefault(
            str(sample["study"]),
            {
                "wall_s": 0.0,
                "units": 0,
                "recomputed_units": 0,
                "cached_units": 0,
                "n_windows": 0,
                "windows_per_s": 0.0,
                "p99_ms": 0.0,
                "units_detail": [],
            },
        )
        study["wall_s"] = round(study["wall_s"] + float(sample["wall_s"]), 6)
        study["units"] += 1
        study["recomputed_units"] += 1
        study["n_windows"] += int(sample.get("n_windows", 0))
        study["p99_ms"] = round(
            max(study["p99_ms"], float(sample.get("p99_ms", 0.0))), 4
        )
        detail = {
            "unit": str(sample["unit"]),
            "wall_s": round(float(sample["wall_s"]), 6),
            "cached": False,
        }
        detail.update(
            {
                key: value
                for key, value in sample.items()
                if key not in ("study", "unit", "wall_s", "n_windows", "p99_ms")
            }
        )
        study["units_detail"].append(detail)
    for study in studies.values():
        if study["wall_s"] > 0 and study["n_windows"]:
            study["windows_per_s"] = round(
                study["n_windows"] / study["wall_s"], 3
            )
    return {
        "schema": SCHEMA,
        "label": str(label),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": bool(quick),
        "jobs": int(jobs),
        "python": sys.version.split()[0],
        "calibration_s": round(_calibration_s(), 6),
        "studies": studies,
    }


# ----------------------------------------------------------------------
# Trajectory files and the regression gate
# ----------------------------------------------------------------------


def write_trajectory(
    record: Mapping[str, Any],
    directory: Path | str = DEFAULT_RESULTS_DIR,
    stamp: str | None = None,
) -> Path:
    """Write ``BENCH_<stamp>.json`` (and the ``BENCH_latest.json`` copy).

    ``stamp`` defaults to the current local time, second resolution;
    the dated file is the per-run artifact, ``BENCH_latest.json`` is the
    stable name CI feeds to the regression gate.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = stamp or time.strftime("%Y%m%d-%H%M%S")
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    path = directory / f"BENCH_{stamp}.json"
    path.write_text(text)
    (directory / "BENCH_latest.json").write_text(text)
    return path


def load_trajectory(path: Path | str) -> dict[str, Any]:
    """Load one trajectory record (schema-checked)."""
    record = json.loads(Path(path).read_text())
    if not isinstance(record, dict) or "studies" not in record:
        raise CheckpointError(f"{path}: not a trajectory record")
    return record


def compare_trajectories(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = 0.2,
    min_wall_s: float = 1.0,
    min_p99_ms: float = 1.0,
) -> tuple[list[str], list[str]]:
    """The CI regression gate over two trajectory records.

    Returns ``(regressions, lines)``: human-readable regression messages
    (empty = gate passes) plus a per-study comparison table.  A study
    regresses when its wall-clock grows by more than ``threshold``
    (default 20 %) under *both* the raw and the calibration-normalized
    ratio -- the favorable one wins, so neither a slower CI runner (raw
    inflated, calibrated ~1) nor a noisy calibration constant (calibrated
    inflated, raw ~1) can fail the gate by itself; a genuine same-code
    slowdown inflates both.  Throughput (windows/sec) gates symmetrically
    on a drop past ``threshold``, and serving tail latency (``p99_ms``,
    recorded by the gateway study) gates like wall-clock, with its own
    ``min_p99_ms`` noise floor.  Studies missing from either side, fully
    checkpoint-cached on either side, or faster than ``min_wall_s`` on
    both sides (noise floor) are reported but never gate.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    base_cal = float(baseline.get("calibration_s", 0.0)) or None
    cur_cal = float(current.get("calibration_s", 0.0)) or None
    regressions: list[str] = []
    lines: list[str] = []
    base_studies = baseline.get("studies", {})
    cur_studies = current.get("studies", {})
    for name in sorted(set(base_studies) | set(cur_studies)):
        base = base_studies.get(name)
        cur = cur_studies.get(name)
        if base is None or cur is None:
            lines.append(
                f"{name}: only in "
                f"{'current' if base is None else 'baseline'} -- skipped"
            )
            continue
        base_wall = float(base.get("wall_s", 0.0))
        cur_wall = float(cur.get("wall_s", 0.0))
        if not base.get("recomputed_units") or not cur.get("recomputed_units"):
            lines.append(f"{name}: checkpoint-cached run -- skipped")
            continue
        if base_wall < min_wall_s and cur_wall < min_wall_s:
            # Sub-second studies never wall-clock-gate, but their tail
            # latency (below) still does: a serving study can be cheap
            # in wall-clock yet regress badly in p99.
            lines.append(
                f"{name}: {base_wall:.2f}s -> {cur_wall:.2f}s "
                f"(below {min_wall_s:g}s noise floor -- skipped)"
            )
        else:
            raw_ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
            if base_cal and cur_cal:
                cal_ratio = (cur_wall / cur_cal) / (base_wall / base_cal)
                ratio = min(raw_ratio, cal_ratio)
                note = f" raw x{raw_ratio:.2f}, calibrated x{cal_ratio:.2f}"
            else:
                ratio = raw_ratio
                note = f" raw x{raw_ratio:.2f}"
            lines.append(
                f"{name}: {base_wall:.2f}s -> {cur_wall:.2f}s [{note.strip()}]"
            )
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"{name}: wall-clock regressed x{ratio:.2f} "
                    f"(limit x{1.0 + threshold:.2f};{note})"
                )
            base_wps = float(base.get("windows_per_s", 0.0))
            cur_wps = float(cur.get("windows_per_s", 0.0))
            if base_wps > 0 and cur_wps > 0:
                raw_wps = cur_wps / base_wps
                if base_cal and cur_cal:
                    cal_wps = (cur_wps * cur_cal) / (base_wps * base_cal)
                    wps_ratio = max(raw_wps, cal_wps)
                else:
                    wps_ratio = raw_wps
                if wps_ratio < 1.0 - threshold:
                    regressions.append(
                        f"{name}: throughput regressed x{wps_ratio:.2f} "
                        f"({base_wps:.1f} -> {cur_wps:.1f} windows/s)"
                    )
        base_p99 = float(base.get("p99_ms", 0.0))
        cur_p99 = float(cur.get("p99_ms", 0.0))
        if base_p99 > 0 and cur_p99 > 0:
            if base_p99 < min_p99_ms and cur_p99 < min_p99_ms:
                lines.append(
                    f"{name}: p99 {base_p99:.2f}ms -> {cur_p99:.2f}ms "
                    f"(below {min_p99_ms:g}ms noise floor -- skipped)"
                )
            else:
                raw_p99 = cur_p99 / base_p99
                if base_cal and cur_cal:
                    cal_p99 = (cur_p99 / cur_cal) / (base_p99 / base_cal)
                    p99_ratio = min(raw_p99, cal_p99)
                else:
                    p99_ratio = raw_p99
                lines.append(
                    f"{name}: p99 {base_p99:.2f}ms -> {cur_p99:.2f}ms "
                    f"[raw x{raw_p99:.2f}]"
                )
                if p99_ratio > 1.0 + threshold:
                    regressions.append(
                        f"{name}: p99 latency regressed x{p99_ratio:.2f} "
                        f"({base_p99:.2f} -> {cur_p99:.2f} ms)"
                    )
    return regressions, lines
