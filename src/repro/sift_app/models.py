"""On-device classifier models for the MLClassifier state.

Two deployment forms of the trained linear SVM (scaler folded into the
weights either way):

* :class:`FloatLinearModel` -- the Original build's classifier: a
  software-float dot product (libm builds compute in double anyway, so
  float arithmetic is already linked);
* :class:`FixedPointDeployedModel` -- the Simplified/Reduced builds'
  classifier: the quantized integer decision function produced by
  :mod:`repro.ml.model_codegen`, evaluated with the hardware multiplier.

Both bill their work to the app's restricted math environment.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.amulet.restricted import RestrictedMath
from repro.ml.model_codegen import FixedPointLinearModel
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC

__all__ = ["DeployedModel", "FixedPointDeployedModel", "FloatLinearModel"]


class DeployedModel(abc.ABC):
    """A classifier as it exists inside the firmware image."""

    @property
    @abc.abstractmethod
    def n_features(self) -> int: ...

    @property
    @abc.abstractmethod
    def data_bytes(self) -> int:
        """FRAM bytes of the model's weight tables."""

    @abc.abstractmethod
    def classify(
        self, math: RestrictedMath, features: np.ndarray
    ) -> tuple[bool, float]:
        """Return ``(altered, decision_value)`` for one feature vector."""


@dataclass(frozen=True)
class FloatLinearModel(DeployedModel):
    """Affine decision function over raw features, evaluated in real math."""

    weights: np.ndarray
    bias: float

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be 1-D")
        object.__setattr__(self, "weights", weights)

    @property
    def n_features(self) -> int:
        return int(self.weights.size)

    @property
    def data_bytes(self) -> int:
        # Doubles on the libm build: 8 bytes per weight plus the bias.
        return 8 * (self.n_features + 1)

    @classmethod
    def from_trained(cls, svc: SVC, scaler: StandardScaler) -> "FloatLinearModel":
        """Fold the scaler into a linear SVC's primal weights."""
        if svc.coef_ is None:
            raise ValueError("FloatLinearModel requires a linear-kernel SVC")
        if scaler.mean_ is None or scaler.scale_ is None:
            raise ValueError("scaler must be fitted")
        weights = svc.coef_ / scaler.scale_
        bias = float(svc.intercept_ - np.dot(svc.coef_, scaler.mean_ / scaler.scale_))
        return cls(weights=weights, bias=bias)

    def classify(
        self, math: RestrictedMath, features: np.ndarray
    ) -> tuple[bool, float]:
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got shape {features.shape}"
            )
        score = float(math.dot(self.weights, features))
        score = float(math.add(score, self.bias))
        math.counter.charge("branch", 1)
        return score >= 0.0, score


@dataclass(frozen=True)
class FixedPointDeployedModel(DeployedModel):
    """The quantized integer model, as the generated C code evaluates it."""

    model: FixedPointLinearModel

    @property
    def n_features(self) -> int:
        return self.model.n_features

    @property
    def data_bytes(self) -> int:
        return 4 * (self.n_features + 1)

    def classify(
        self, math: RestrictedMath, features: np.ndarray
    ) -> tuple[bool, float]:
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got shape {features.shape}"
            )
        # Feature quantization: one real multiply + truncate per feature.
        features_q = self.model.quantize(features)
        math.counter.charge("float_mul", self.n_features)
        math.counter.charge("int_op", self.n_features)
        acc = math.fixed_mac(
            self.model.weights_q, features_q, self.model.frac_bits
        )
        acc += self.model.bias_q
        math.counter.charge("int_op", 1)
        math.counter.charge("branch", 1)
        return acc >= 0, acc / self.model.scale
