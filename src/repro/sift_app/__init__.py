"""The SIFT detector as an Amulet application.

This is the deployment half of the reproduction: the detector re-implemented
the way the paper's C code ran on the device -- single-precision arithmetic
through the restricted math environment, three QM states
(*PeaksDataCheck -> FeatureExtraction -> MLClassifier*), a fixed-point
(Simplified/Reduced) or software-float (Original) classifier, and resource
declarations for the firmware toolchain.

The :class:`~repro.sift_app.harness.AmuletSIFTRunner` wires a trained
reference detector into a firmware image, streams evaluation windows
through the simulated OS, and hands back both the device's verdicts (for
Table II's "Amulet" rows) and the usage ledger (for Table III and Fig. 3).
"""

from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.device_features import (
    device_extract_features,
    device_extract_original,
    device_extract_reduced,
    device_extract_simplified,
)
from repro.sift_app.device_peaks import (
    device_detect_r_peaks,
    device_detect_systolic_peaks,
)
from repro.sift_app.harness import AmuletSIFTRunner, DeviceRunResult
from repro.sift_app.models import DeployedModel, FloatLinearModel
from repro.sift_app.payload import DeviceWindow

__all__ = [
    "AmuletSIFTRunner",
    "DeployedModel",
    "DeviceRunResult",
    "DeviceWindow",
    "FloatLinearModel",
    "SIFTDetectorApp",
    "device_detect_r_peaks",
    "device_detect_systolic_peaks",
    "device_extract_features",
    "device_extract_original",
    "device_extract_reduced",
    "device_extract_simplified",
]
