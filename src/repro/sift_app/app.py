"""The SIFT detector as a three-state QM application.

Mirrors the paper's app structure exactly:

* **PeaksDataCheck** -- fetches the next ECG/ABP snippet (with its
  pre-stored peak indexes) from memory, sanity-checks the peak data and
  shows the snippet on the LED screen;
* **FeatureExtraction** -- runs the version-specific device feature
  extraction through the restricted math environment;
* **MLClassifier** -- evaluates the deployed per-user model; a positive
  label generates an alert on the LED screen (plus a haptic buzz).

Only PeaksDataCheck is identical across versions; FeatureExtraction and
MLClassifier differ per build, which is reflected in the per-version code
inventories and data declarations the firmware toolchain consumes.
"""

from __future__ import annotations

import numpy as np

from repro.amulet.firmware import ArrayDeclaration
from repro.amulet.qm import Event, QMApp, State, StateMachine
from repro.core.versions import DetectorVersion
from repro.sift_app.device_features import device_extract_features
from repro.sift_app.models import DeployedModel
from repro.sift_app.payload import DeviceWindow

__all__ = ["SIFTDetectorApp"]

#: Estimated code bytes per routine, per build -- the static-analysis
#: numbers the Amulet Resource Profiler would extract from the compiled
#: image.  PeaksDataCheck and the state-machine glue are shared; the
#: feature-extraction and classifier routines differ per version.
_CODE_INVENTORY: dict[DetectorVersion, dict[str, int]] = {
    DetectorVersion.ORIGINAL: {
        "peaks_data_check": 340,
        "normalize_full": 190,
        "histogram": 210,
        "spatial_filling_index": 180,
        "column_stats_std": 230,  # includes the sqrt call site
        "auc_trapezoid": 130,
        "peak_angles_atan": 200,
        "peak_distances_sqrt": 220,
        "paired_distance_sqrt": 180,
        "classifier_float": 150,
        "state_glue_display": 270,
    },
    DetectorVersion.SIMPLIFIED: {
        "peaks_data_check": 340,
        "normalize_full": 190,
        "histogram": 210,
        "spatial_filling_index": 180,
        "column_stats_var": 150,
        "auc_composite": 90,
        "peak_slopes": 110,
        "peak_sq_distances": 100,
        "paired_sq_distance": 90,
        "classifier_fixed_point": 120,
        "state_glue_display": 270,
    },
    DetectorVersion.REDUCED: {
        "peaks_data_check": 340,
        "minmax_peak_normalize": 150,
        "peak_slopes": 110,
        "peak_sq_distances": 100,
        "paired_sq_distance": 90,
        "classifier_fixed_point": 120,
        "state_glue_display": 270,
    },
}

#: Peak-index buffers: up to 16 R + 16 systolic int16 indexes per window.
_PEAK_BUFFER_BYTES = 2 * 16 * 2
#: Stack + scalar locals of the deepest handler (measured on device
#: builds: the matrix builds additionally keep the float[50] column
#: average array, see ``sram_peak_bytes``).
_LOCALS_BYTES = 59
_REDUCED_LOCALS_BYTES = 69


class SIFTDetectorApp(QMApp):
    """One build of the SIFT detector, installable on the simulated Amulet.

    Parameters
    ----------
    version:
        Which build this app is.
    model:
        The deployed per-user classifier
        (:class:`~repro.sift_app.models.FloatLinearModel` for Original,
        :class:`~repro.sift_app.models.FixedPointDeployedModel`
        otherwise).
    grid_n:
        Occupancy-grid side length (paper: 50).
    show_snippets:
        Whether PeaksDataCheck writes each snippet summary to the display
        (the paper's app does; disable for pure compute profiling).
    """

    def __init__(
        self,
        version: DetectorVersion,
        model: DeployedModel,
        grid_n: int = 50,
        show_snippets: bool = True,
        live_peak_detection: bool = False,
        name: str | None = None,
    ) -> None:
        if version.n_features != model.n_features:
            raise ValueError(
                f"{version.value} build extracts {version.n_features} features "
                f"but the model expects {model.n_features}"
            )
        self.version = version
        self.model = model
        self.grid_n = int(grid_n)
        self.show_snippets = bool(show_snippets)
        #: When set, PeaksDataCheck re-derives peak indexes on device
        #: instead of trusting pre-stored ones (the paper's "simple
        #: extension to perform these tasks at run-time").
        self.live_peak_detection = bool(live_peak_detection)
        #: Device verdicts, appended per processed window.
        self.predictions: list[bool] = []
        self.decision_values: list[float] = []
        self.windows_processed = 0
        self.rejected_windows = 0
        self._window: DeviceWindow | None = None
        self._features: np.ndarray | None = None

        peaks_check = State("PeaksDataCheck").on("SENSOR_DATA", _on_sensor_data)
        feature_extraction = State("FeatureExtraction", on_entry=_extract)
        ml_classifier = State("MLClassifier", on_entry=_classify)
        machine = StateMachine(
            [peaks_check, feature_extraction, ml_classifier],
            initial="PeaksDataCheck",
        )
        super().__init__(name or f"sift-{version.value}", machine)

    # ------------------------------------------------------------------
    # Resource declarations (consumed by the toolchain and ARP)
    # ------------------------------------------------------------------

    def code_inventory(self) -> dict[str, int]:
        inventory = dict(_CODE_INVENTORY[self.version])
        if self.live_peak_detection:
            inventory["live_peak_detection"] = 420
        return inventory

    def static_data_bytes(self) -> dict[str, int]:
        data = {
            "peak_index_buffers": _PEAK_BUFFER_BYTES,
            "feature_buffer": 4 * self.version.n_features,
            "model_weights": self.model.data_bytes,
        }
        if self.version.uses_matrix_features:
            # Flat uint8 occupancy matrix (the platform has no 2-D arrays).
            data["occupancy_matrix"] = self.grid_n * self.grid_n
        return data

    def array_declarations(self) -> list[ArrayDeclaration]:
        """Array attributes for the toolchain's static checks."""
        arrays = [
            ArrayDeclaration("r_peak_idx", element_bytes=2, length=16),
            ArrayDeclaration("systolic_peak_idx", element_bytes=2, length=16),
            ArrayDeclaration(
                "feature_buffer", element_bytes=4, length=self.version.n_features
            ),
        ]
        if self.version.uses_matrix_features:
            arrays.append(
                ArrayDeclaration(
                    "occupancy_matrix",
                    element_bytes=1,
                    length=self.grid_n * self.grid_n,
                )
            )
        return arrays

    def sram_peak_bytes(self) -> int:
        if self.version.uses_matrix_features:
            # float[grid_n] column-average scratch plus handler locals.
            return 4 * self.grid_n + _LOCALS_BYTES
        return _REDUCED_LOCALS_BYTES

    def uses_libm(self) -> bool:
        return self.version.requires_libm

    def required_services(self) -> set[str]:
        """System services this build links against."""
        services = {"float_arithmetic", "string_float", "signal_arrays"}
        if self.version.uses_matrix_features:
            services.add("grid_dsp")
        return services


# ----------------------------------------------------------------------
# State handlers (module-level functions, as QM event handlers are in C)
# ----------------------------------------------------------------------


def _on_sensor_data(app: SIFTDetectorApp, event: Event) -> str | None:
    """PeaksDataCheck: fetch the snippet, validate peaks, display it."""
    window = app.services.fetch_window()
    if window is None:
        return None
    if not isinstance(window, DeviceWindow):
        raise TypeError(f"expected a DeviceWindow payload, got {type(window)!r}")
    if app.live_peak_detection:
        from repro.sift_app.device_peaks import with_live_peaks

        window = with_live_peaks(app.services.math, window)
    # Peak sanity check: indexes in range and strictly increasing.  A
    # snippet with corrupt peak metadata is dropped, not classified.
    for peaks in (window.r_peaks, window.systolic_peaks):
        app.services.math.counter.charge("int_op", 2 * max(len(peaks), 1))
        if peaks.size and (
            peaks.min() < 0
            or peaks.max() >= window.n_samples
            or np.any(np.diff(peaks) <= 0)
        ):
            app.rejected_windows += 1
            return None
    app._window = window
    if app.show_snippets:
        ecg_text = app.services.float_to_string(float(window.ecg[0]), 2)
        abp_text = app.services.float_to_string(float(window.abp[0]), 1)
        app.services.display_write(0, f"ECG {ecg_text} ABP {abp_text}")
    return "FeatureExtraction"


def _extract(app: SIFTDetectorApp) -> str:
    """FeatureExtraction entry action: run the device extractor."""
    assert app._window is not None, "FeatureExtraction entered without a window"
    app._features = device_extract_features(
        app.services.math, app.version, app._window, grid_n=app.grid_n
    )
    return "MLClassifier"


def _classify(app: SIFTDetectorApp) -> str:
    """MLClassifier entry action: evaluate the model, alert if positive."""
    assert app._features is not None, "MLClassifier entered without features"
    altered, value = app.model.classify(app.services.math, app._features)
    app.predictions.append(altered)
    app.decision_values.append(value)
    app.windows_processed += 1
    if altered:
        app.services.alert("ECG ALTERED")
    app._window = None
    app._features = None
    return "PeaksDataCheck"
