"""The data snippet an app receives: the device-side window format.

The paper pre-stores "ECG and ABP data and their corresponding peak
indexes" in the Amulet's memory; over BLE the same payload would arrive
from the sensors.  Signals are single-precision (C ``float`` arrays of
1080 samples for a 3 s window at 360 Hz) and peak indexes are 16-bit
integers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.dataset import SignalWindow

__all__ = ["DeviceWindow"]


@dataclass(frozen=True)
class DeviceWindow:
    """One window as stored in / delivered to the Amulet."""

    ecg: np.ndarray  # float32
    abp: np.ndarray  # float32
    r_peaks: np.ndarray  # int16-range sample indexes
    systolic_peaks: np.ndarray
    sample_rate: float

    def __post_init__(self) -> None:
        if self.ecg.shape != self.abp.shape or self.ecg.ndim != 1:
            raise ValueError("ECG and ABP must be equal-length 1-D arrays")
        for name in ("r_peaks", "systolic_peaks"):
            peaks = getattr(self, name)
            if peaks.size and (peaks.min() < 0 or peaks.max() >= self.ecg.size):
                raise ValueError(f"{name} contains out-of-window indexes")

    @property
    def n_samples(self) -> int:
        return int(self.ecg.size)

    def as_signal_window(self, subject_id: str = "") -> SignalWindow:
        """View the device payload as a simulation window.

        Used by the base station's quality gate: the SQI is assessed on
        exactly the float32 payload the detector would see, so the gate
        and the classifier agree about the data under judgement.
        """
        return SignalWindow(
            ecg=self.ecg,
            abp=self.abp,
            r_peaks=self.r_peaks,
            systolic_peaks=self.systolic_peaks,
            sample_rate=self.sample_rate,
            subject_id=subject_id,
        )

    @classmethod
    def from_signal_window(cls, window: SignalWindow) -> "DeviceWindow":
        """Convert a simulation window to the device format.

        The float64 -> float32 cast happens here: it models the sensor's
        wire format, so both the device pipeline and any comparison
        against the reference operate on what the device actually saw.
        """
        return cls(
            ecg=window.ecg.astype(np.float32),
            abp=window.abp.astype(np.float32),
            r_peaks=np.asarray(window.r_peaks, dtype=np.int16).astype(np.intp),
            systolic_peaks=np.asarray(window.systolic_peaks, dtype=np.int16).astype(
                np.intp
            ),
            sample_rate=float(window.sample_rate),
        )
