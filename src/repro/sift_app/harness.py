"""Run a trained detector on the simulated Amulet.

The :class:`AmuletSIFTRunner` is the deployment harness: it deploys a
reference-trained :class:`~repro.core.detector.SIFTDetector` into a
firmware image (Original -> float classifier + libm; Simplified/Reduced ->
fixed-point classifier, no libm), boots AmuletOS, streams evaluation
windows in over the simulated BLE path and collects both the device's
verdicts and the resource ledger.  Table II's "Amulet" rows and all of
Table III / Fig. 3 come out of this class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amulet.amulet_os import AmuletOS, UsageLedger
from repro.amulet.battery import Battery
from repro.amulet.firmware import FirmwareImage, FirmwareToolchain
from repro.amulet.profiler import AmuletResourceProfiler, ResourceProfile
from repro.amulet.restricted import CycleCostModel
from repro.attacks.scenario import LabeledStream
from repro.core.detector import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.ml.metrics import DetectionReport, score_predictions
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.models import (
    DeployedModel,
    FixedPointDeployedModel,
    FloatLinearModel,
)
from repro.sift_app.payload import DeviceWindow

__all__ = ["AmuletSIFTRunner", "DeviceRunResult", "deploy_model"]


def deploy_model(detector: SIFTDetector, frac_bits: int = 14) -> DeployedModel:
    """Deploy a trained detector's classifier in its build's native form."""
    if detector.version is DetectorVersion.ORIGINAL:
        return FloatLinearModel.from_trained(detector.svc, detector.scaler)
    return FixedPointDeployedModel(detector.deploy(frac_bits))


@dataclass(frozen=True)
class DeviceRunResult:
    """Outcome of streaming one labelled stream through the device."""

    predictions: np.ndarray
    decision_values: np.ndarray
    labels: np.ndarray
    ledger: UsageLedger
    n_windows: int

    @property
    def report(self) -> DetectionReport:
        return score_predictions(self.predictions, self.labels)


class AmuletSIFTRunner:
    """Deploys one trained detector and drives it with signal windows.

    Parameters
    ----------
    detector:
        A fitted reference detector (any version, linear kernel).
    frac_bits:
        Fixed-point fractional bits for the Simplified/Reduced classifier.
    toolchain / battery / cost_model:
        Override the platform models (defaults reproduce the paper's
        device).
    """

    def __init__(
        self,
        detector: SIFTDetector,
        frac_bits: int = 14,
        toolchain: FirmwareToolchain | None = None,
        battery: Battery | None = None,
        cost_model: CycleCostModel | None = None,
    ) -> None:
        self.detector = detector
        self.app = SIFTDetectorApp(
            version=detector.version,
            model=deploy_model(detector, frac_bits),
            grid_n=detector.grid_n,
        )
        toolchain = toolchain or FirmwareToolchain()
        self.image: FirmwareImage = toolchain.build([self.app])
        self.cost_model = cost_model or CycleCostModel()
        self.os = AmuletOS(self.image, cost_model=self.cost_model)
        self.profiler = AmuletResourceProfiler(
            battery=battery, cost_model=self.cost_model
        )
        self._windows_run = 0

    def run_stream(self, stream: LabeledStream) -> DeviceRunResult:
        """Deliver every window over simulated BLE and classify it."""
        first = len(self.app.predictions)
        for window in stream.windows:
            self.os.deliver_sensor_window(
                self.app.name, DeviceWindow.from_signal_window(window)
            )
            self.os.run_until_idle()
        self._windows_run += len(stream)
        predictions = np.asarray(self.app.predictions[first:], dtype=bool)
        values = np.asarray(self.app.decision_values[first:], dtype=np.float64)
        if predictions.size != len(stream):
            raise RuntimeError(
                f"device classified {predictions.size} of {len(stream)} "
                "windows; some snippets were rejected by PeaksDataCheck"
            )
        return DeviceRunResult(
            predictions=predictions,
            decision_values=values,
            labels=stream.labels,
            ledger=self.os.ledger,
            n_windows=len(stream),
        )

    def profile(self, period_s: float = 3.0) -> ResourceProfile:
        """ARP profile from everything run so far (Table III / Fig. 3)."""
        if self._windows_run == 0:
            raise RuntimeError("run at least one stream before profiling")
        return self.profiler.profile(
            image=self.image,
            app_name=self.app.name,
            ledger=self.os.ledger,
            n_events=self._windows_run,
            period_s=period_s,
        )
