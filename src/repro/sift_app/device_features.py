"""Device-side feature extraction (the FeatureExtraction state's math).

These functions re-implement the three feature extractors the way the
paper's C code computes them on the MSP430 -- through the
:class:`~repro.amulet.restricted.RestrictedMath` environment, which bills
every scalar operation and enforces the libm gate:

* :func:`device_extract_original` -- double precision, ``sqrt``/``atan2``
  from libm, trapezoidal AUC;
* :func:`device_extract_simplified` -- single precision, variance instead
  of std-dev, composite-sum AUC, slopes and squared distances;
* :func:`device_extract_reduced` -- simplified geometric features only;
  the 50x50 matrix is never built and the full-array normalization is
  replaced by normalizing just the handful of peak coordinates.

The occupancy matrix uses saturating uint8 cells (counts clip at 255),
matching the flat ``unsigned char`` array a 2 KB-SRAM device would use.
Feature order matches the reference extractors in
:mod:`repro.core.features`, so reference-trained models deploy unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.amulet.restricted import RestrictedMath
from repro.core.features.simplified import SLOPE_EPSILON
from repro.core.versions import DetectorVersion
from repro.sift_app.payload import DeviceWindow

__all__ = [
    "device_extract_features",
    "device_extract_original",
    "device_extract_reduced",
    "device_extract_simplified",
]

#: Maximum R-peak-to-systolic-peak pairing lag, in seconds (same
#: physiological constant the reference pipeline uses).
_PAIR_MAX_LAG_S = 0.6


def _pair_peaks(
    math: RestrictedMath,
    r_peaks: np.ndarray,
    systolic_peaks: np.ndarray,
    max_lag: int,
) -> list[tuple[int, int]]:
    """Device peak pairing: first systolic peak after each R, within lag.

    A linear merge over two sorted int16 index arrays; billed as the
    integer compare/advance loop it compiles to.
    """
    pairs: list[tuple[int, int]] = []
    s_list = sorted(int(s) for s in systolic_peaks)
    position = 0
    for r in sorted(int(r) for r in r_peaks):
        while position < len(s_list) and s_list[position] <= r:
            position += 1
            math.counter.charge("int_op", 2)
        math.counter.charge("int_op", 2)
        if position < len(s_list) and s_list[position] - r <= max_lag:
            pairs.append((r, s_list[position]))
    return pairs


def _peak_coords(
    math: RestrictedMath,
    window: DeviceWindow,
    indexes: np.ndarray | list[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Normalized portrait coordinates (x=ABP, y=ECG) of selected samples.

    Normalizes only the selected samples against the window's min/max --
    the trick that lets the Reduced build skip the two full 1080-element
    normalization passes.
    """
    indexes = np.asarray(indexes, dtype=np.intp)
    abp_min, abp_max = math.min(window.abp), math.max(window.abp)
    ecg_min, ecg_max = math.min(window.ecg), math.max(window.ecg)
    abp_span = max(float(abp_max) - float(abp_min), float(np.finfo(np.float32).tiny))
    ecg_span = max(float(ecg_max) - float(ecg_min), float(np.finfo(np.float32).tiny))
    x = math.div(math.sub(window.abp[indexes], abp_min), abp_span)
    y = math.div(math.sub(window.ecg[indexes], ecg_min), ecg_span)
    return x, y


def _geometric_simplified(
    math: RestrictedMath, window: DeviceWindow
) -> list[float]:
    """The five simplified geometric features (shared by two builds)."""
    max_lag = int(_PAIR_MAX_LAG_S * window.sample_rate)
    pairs = _pair_peaks(math, window.r_peaks, window.systolic_peaks, max_lag)

    def slope_and_sqdist(indexes: np.ndarray) -> tuple[float, float]:
        if indexes.size == 0:
            return 0.0, 0.0
        x, y = _peak_coords(math, window, indexes)
        x_clamped = math.maximum(x, SLOPE_EPSILON)
        slope = float(math.mean(math.div(y, x_clamped)))
        sqdist = float(math.mean(math.add(math.mul(x, x), math.mul(y, y))))
        return slope, sqdist

    r_slope, r_sqdist = slope_and_sqdist(np.asarray(window.r_peaks, dtype=np.intp))
    s_slope, s_sqdist = slope_and_sqdist(
        np.asarray(window.systolic_peaks, dtype=np.intp)
    )

    if pairs:
        r_idx = np.array([p[0] for p in pairs], dtype=np.intp)
        s_idx = np.array([p[1] for p in pairs], dtype=np.intp)
        rx, ry = _peak_coords(math, window, r_idx)
        sx, sy = _peak_coords(math, window, s_idx)
        dx, dy = math.sub(rx, sx), math.sub(ry, sy)
        paired_sqdist = float(
            math.mean(math.add(math.mul(dx, dx), math.mul(dy, dy)))
        )
    else:
        paired_sqdist = 0.0
    return [r_slope, s_slope, r_sqdist, s_sqdist, paired_sqdist]


def _matrix_pipeline(
    math: RestrictedMath, window: DeviceWindow, grid_n: int
) -> tuple[float, np.ndarray]:
    """Normalize both signals, build the matrix; return (SFI, col averages).

    SFI is computed integer-first -- ``n^2 * sum(c^2) / N^2`` -- so the
    2500-cell pass uses the hardware multiplier instead of 2500 software
    float divisions (and yields the same value as the reference formula).
    """
    x = math.normalize_minmax(window.abp)
    y = math.normalize_minmax(window.ecg)
    # Columns index the ECG axis (histogram2d's first argument), matching
    # the reference Portrait.occupancy_matrix orientation.
    matrix = math.histogram2d(y, x, grid_n)
    total = math.int_sum(matrix)
    if total == 0:
        sfi = 0.0
    else:
        sq_sum = math.int_sq_sum(matrix.reshape(-1))
        numerator = math.mul(float(grid_n * grid_n), float(sq_sum))
        sfi = float(math.div(numerator, float(total) * float(total)))
        math.counter.charge("int_mul", 1)  # total * total

    # Column averages: per-column integer sum, one real division each.
    col_avg = np.zeros(grid_n, dtype=np.float64)
    for j in range(grid_n):
        col_sum = math.int_sum(matrix[:, j])
        col_avg[j] = float(math.div(float(col_sum), float(grid_n)))
    return sfi, col_avg


def _auc_pairwise(math: RestrictedMath, curve: np.ndarray) -> float:
    """``0.5 * sum(f_k + f_{k+1})`` -- both builds' AUC boils down to this."""
    if curve.size < 2:
        return 0.0
    inner = math.add(curve[:-1], curve[1:])
    return float(math.mul(0.5, math.sum(inner)))


def device_extract_simplified(
    math: RestrictedMath, window: DeviceWindow, grid_n: int = 50
) -> np.ndarray:
    """Simplified build: 8 features, single precision, no libm."""
    sfi, col_avg = _matrix_pipeline(math, window, grid_n)
    mean = math.mean(col_avg)
    deviations = math.sub(col_avg, mean)
    variance = float(math.mean(math.mul(deviations, deviations)))
    auc = _auc_pairwise(math, col_avg)
    geometric = _geometric_simplified(math, window)
    return np.array([sfi, variance, auc, *geometric], dtype=np.float64)


def device_extract_reduced(
    math: RestrictedMath, window: DeviceWindow, grid_n: int = 50
) -> np.ndarray:
    """Reduced build: the 5 simplified geometric features only."""
    return np.array(_geometric_simplified(math, window), dtype=np.float64)


def device_extract_original(
    math: RestrictedMath, window: DeviceWindow, grid_n: int = 50
) -> np.ndarray:
    """Original build: full features; needs libm (raises without it)."""
    sfi, col_avg = _matrix_pipeline(math, window, grid_n)
    mean = math.mean(col_avg)
    deviations = math.sub(col_avg, mean)
    variance = math.mean(math.mul(deviations, deviations))
    std = float(math.sqrt(variance))
    auc = _auc_pairwise(math, col_avg)

    max_lag = int(_PAIR_MAX_LAG_S * window.sample_rate)
    pairs = _pair_peaks(math, window.r_peaks, window.systolic_peaks, max_lag)

    def angle_and_dist(indexes: np.ndarray) -> tuple[float, float]:
        if indexes.size == 0:
            return 0.0, 0.0
        x, y = _peak_coords(math, window, indexes)
        angle = float(math.mean(math.atan2(y, x)))
        dist = float(
            math.mean(math.sqrt(math.add(math.mul(x, x), math.mul(y, y))))
        )
        return angle, dist

    r_angle, r_dist = angle_and_dist(np.asarray(window.r_peaks, dtype=np.intp))
    s_angle, s_dist = angle_and_dist(
        np.asarray(window.systolic_peaks, dtype=np.intp)
    )
    if pairs:
        r_idx = np.array([p[0] for p in pairs], dtype=np.intp)
        s_idx = np.array([p[1] for p in pairs], dtype=np.intp)
        rx, ry = _peak_coords(math, window, r_idx)
        sx, sy = _peak_coords(math, window, s_idx)
        dx, dy = math.sub(rx, sx), math.sub(ry, sy)
        paired_dist = float(
            math.mean(math.sqrt(math.add(math.mul(dx, dx), math.mul(dy, dy))))
        )
    else:
        paired_dist = 0.0
    return np.array(
        [sfi, std, auc, r_angle, s_angle, r_dist, s_dist, paired_dist],
        dtype=np.float64,
    )


_EXTRACTORS = {
    DetectorVersion.ORIGINAL: device_extract_original,
    DetectorVersion.SIMPLIFIED: device_extract_simplified,
    DetectorVersion.REDUCED: device_extract_reduced,
}


def device_extract_features(
    math: RestrictedMath,
    version: DetectorVersion,
    window: DeviceWindow,
    grid_n: int = 50,
) -> np.ndarray:
    """Dispatch to the extractor of a detector version."""
    return _EXTRACTORS[version](math, window, grid_n=grid_n)
