"""On-device peak detection (the paper's "simple extension").

The paper pre-stores peak indexes alongside the snippets "for ease of
testing", noting that "it is a simple extension to perform these tasks at
run-time based on live data".  This module is that extension: R-peak and
systolic-peak detection written against the restricted math environment --
integer/single-precision only, no libm -- so the PeaksDataCheck state can
derive the indexes itself when a snippet arrives without them.

The algorithm is the integer skeleton of the reference detector
(:mod:`repro.signals.peaks`): first-difference energy, a boxcar
integration, a fixed-fraction threshold of the batch maximum, and a
refractory scan.  Simpler than the reference (no percentile statistics,
no detrending -- both would be luxuries on an MSP430), which is exactly
the fidelity trade-off a device port makes.
"""

from __future__ import annotations

import numpy as np

from repro.amulet.restricted import RestrictedMath
from repro.sift_app.payload import DeviceWindow

__all__ = ["device_detect_r_peaks", "device_detect_systolic_peaks", "with_live_peaks"]


def _scan_peaks(
    math: RestrictedMath,
    score: np.ndarray,
    threshold: float,
    refractory: int,
) -> list[int]:
    """Greedy left-to-right maxima scan with a refractory window.

    The single-pass loop a C implementation would use: track the running
    maximum inside each super-threshold region; emit it when the signal
    falls below threshold or the refractory distance is reached.
    """
    peaks: list[int] = []
    best_index = -1
    best_value = -np.inf
    math.counter.charge("branch", score.size)
    math.counter.charge("mem_access", score.size)
    for i, value in enumerate(score.tolist()):
        if value > threshold:
            if value > best_value:
                best_value = value
                best_index = i
        elif best_index >= 0:
            if not peaks or best_index - peaks[-1] >= refractory:
                peaks.append(best_index)
            best_index = -1
            best_value = -np.inf
    if best_index >= 0 and (not peaks or best_index - peaks[-1] >= refractory):
        peaks.append(best_index)
    math.counter.charge("int_op", 2 * len(peaks))
    return peaks


def device_detect_r_peaks(
    math: RestrictedMath,
    ecg: np.ndarray,
    sample_rate: float,
    threshold_fraction: float = 0.3,
    refractory_s: float = 0.25,
) -> np.ndarray:
    """Detect R peaks in a device window without libm.

    Derivative -> squaring -> short boxcar integration -> threshold at a
    fraction of the window maximum -> refractory maxima scan, then refine
    each detection to the local signal maximum.
    """
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    ecg32 = np.asarray(ecg, dtype=np.float32)
    if ecg32.size < 8:
        return np.empty(0, dtype=np.intp)

    derivative = math.sub(ecg32[1:], ecg32[:-1])
    energy = math.mul(derivative, derivative)
    # Boxcar integration over ~100 ms via a running sum (one add and one
    # subtract per sample on device; billed as two adds).
    width = max(1, int(0.1 * sample_rate))
    kernel = np.ones(width, dtype=np.float32)
    integrated = np.convolve(energy, kernel, mode="same").astype(np.float32)
    math.counter.charge(f"{'double' if math.double_precision else 'float'}_add",
                        2 * energy.size)
    math.counter.charge("mem_access", 2 * energy.size)

    peak_value = float(math.max(integrated))
    if peak_value <= 0:
        return np.empty(0, dtype=np.intp)
    # Dual threshold: a fraction of the window maximum, floored by a
    # multiple of the mean energy so that one large motion artifact cannot
    # push the threshold above the real QRS complexes.
    mean_value = float(math.mean(integrated))
    threshold = min(threshold_fraction * peak_value, 8.0 * mean_value)
    math.counter.charge("float_mul", 2)
    math.counter.charge("branch", 1)

    refractory = max(1, int(refractory_s * sample_rate))
    rough = _scan_peaks(math, integrated, threshold, refractory)

    # Refine to the ECG maximum within +-60 ms.
    half = max(1, int(0.06 * sample_rate))
    refined = []
    for index in rough:
        lo = max(0, index - half)
        hi = min(ecg32.size, index + half + 1)
        refined.append(lo + int(np.argmax(ecg32[lo:hi])))
        math.counter.charge("branch", hi - lo)
        math.counter.charge("mem_access", hi - lo)
    return np.unique(np.asarray(refined, dtype=np.intp))


def device_detect_systolic_peaks(
    math: RestrictedMath,
    abp: np.ndarray,
    sample_rate: float,
    threshold_fraction: float = 0.6,
    min_spacing_s: float = 0.4,
) -> np.ndarray:
    """Detect systolic peaks in a device window without libm.

    Thresholds at a fraction of the window's dynamic range above its
    minimum and scans for refractory-separated maxima on the raw signal.
    """
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    abp32 = np.asarray(abp, dtype=np.float32)
    if abp32.size < 4:
        return np.empty(0, dtype=np.intp)
    low = float(math.min(abp32))
    high = float(math.max(abp32))
    if high <= low:
        return np.empty(0, dtype=np.intp)
    threshold = low + threshold_fraction * (high - low)
    math.counter.charge("float_mul", 1)
    math.counter.charge("float_add", 2)
    refractory = max(1, int(min_spacing_s * sample_rate))
    peaks = _scan_peaks(math, abp32, threshold, refractory)
    return np.asarray(peaks, dtype=np.intp)


def with_live_peaks(math: RestrictedMath, window: DeviceWindow) -> DeviceWindow:
    """Re-derive a window's peak indexes on device.

    Used by PeaksDataCheck when ``live_peak_detection`` is enabled: the
    incoming snippet's pre-stored indexes (if any) are discarded and
    replaced by the on-device detectors' output.
    """
    return DeviceWindow(
        ecg=window.ecg,
        abp=window.abp,
        r_peaks=device_detect_r_peaks(math, window.ecg, window.sample_rate),
        systolic_peaks=device_detect_systolic_peaks(
            math, window.abp, window.sample_rate
        ),
        sample_rate=window.sample_rate,
    )
