"""The fault contract and the composable injector.

A :class:`SensorFault` rewrites one :class:`~repro.wiot.sensor.SensorPacket`
at a time; a :class:`FaultInjector` owns the RNG and applies an ordered
stack of faults to a packet stream.  Faults advertise a ``severity`` in
``[0, 1]`` and must be the identity at severity 0 -- the injector enforces
this structurally by skipping zero-severity faults entirely, so a
zero-severity sweep point is bit-identical to the clean pipeline (it does
not even consume RNG draws).
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.wiot.sensor import SensorPacket

__all__ = ["FaultInjector", "SensorFault"]


class SensorFault(abc.ABC):
    """One sensor-side failure mode, parameterized by severity.

    Parameters
    ----------
    severity:
        Fault intensity in ``[0, 1]``; 0 must be a no-op (the injector
        skips the fault entirely) and 1 the worst modelled case.
    """

    def __init__(self, severity: float) -> None:
        if not 0.0 <= severity <= 1.0:
            raise ValueError(f"severity must be in [0, 1], got {severity}")
        self.severity = float(severity)

    @abc.abstractmethod
    def apply(
        self, packet: SensorPacket, rng: np.random.Generator
    ) -> SensorPacket:
        """Return the (possibly rewritten) packet."""

    def reset(self) -> None:
        """Clear any cross-packet state (stateless faults: no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(severity={self.severity})"


class FaultInjector:
    """Apply an ordered stack of sensor faults to packet streams.

    One injector is shared by every sensor of a deployment (the ECG and
    ABP streams of :class:`~repro.wiot.environment.WIoTEnvironment` both
    pass through it), so per-channel faults such as clock drift can
    desynchronize the two streams from a single place.

    Parameters
    ----------
    faults:
        Faults applied in order to every packet.
    seed:
        Seed of the injector-owned RNG; :meth:`reset` restores it so one
        injector can be reused across sweep points deterministically.
    """

    def __init__(self, faults: Sequence[SensorFault], seed: int = 0) -> None:
        self.faults = tuple(faults)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self.packets_faulted = 0

    def reset(self) -> None:
        """Reseed the RNG and clear all per-fault state and counters."""
        self._rng = np.random.default_rng(self.seed)
        self.packets_faulted = 0
        for fault in self.faults:
            fault.reset()

    def apply(self, packet: SensorPacket) -> SensorPacket:
        """Run one packet through the fault stack."""
        original = packet
        for fault in self.faults:
            if fault.severity <= 0.0:
                continue  # the zero-severity contract: not even an RNG draw
            packet = fault.apply(packet, self._rng)
        if packet is not original:
            self.packets_faulted += 1
        return packet

    def stream(self, packets: Iterable[SensorPacket]) -> Iterator[SensorPacket]:
        """Lazily apply the fault stack to a packet stream."""
        for packet in packets:
            yield self.apply(packet)
