"""Channel-side fault models.

Two pieces:

* :class:`GilbertElliottChannel` -- the classic two-state Markov burst
  loss model, a drop-in alternative to the independent-loss
  :class:`~repro.wiot.channel.WirelessChannel` (body-area links fade in
  bursts when the wearer turns away from the base station, they do not
  flip coins per packet);
* :class:`FaultyChannel` -- a wrapper adding packet duplication,
  reordering and payload bit-flip corruption on top of any loss model,
  with a sender-side CRC stamped on every delivery so the base station
  can *detect* corruption instead of classifying garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.wiot.channel import DeliveredPacket, WirelessChannel
from repro.wiot.sensor import SensorPacket

__all__ = ["FaultyChannel", "GilbertElliottChannel"]


@dataclass
class GilbertElliottChannel:
    """Two-state Markov (Gilbert-Elliott) bursty-loss wireless link.

    The channel is in a *good* or *bad* state; each transmission first
    makes a state transition, then drops the packet with the state's
    loss probability.  Mean burst length is ``1 / p_bad_to_good``.

    Parameters
    ----------
    good_loss / bad_loss:
        Drop probability in the good / bad state.
    p_good_to_bad / p_bad_to_good:
        Per-packet transition probabilities.
    base_latency_s / jitter_s:
        Same latency model as :class:`WirelessChannel`.
    seed:
        Seed of the channel's own RNG; :meth:`reset` restores it.
    """

    good_loss: float = 0.0
    bad_loss: float = 0.8
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.3
    base_latency_s: float = 0.05
    jitter_s: float = 0.05
    seed: int = 7
    packets_sent: int = field(default=0, init=False)
    packets_dropped: int = field(default=0, init=False)
    _bad: bool = field(default=False, init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("good_loss", "bad_loss"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        for name in ("p_good_to_bad", "p_bad_to_good"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.base_latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @classmethod
    def from_severity(cls, severity: float, seed: int = 7) -> "GilbertElliottChannel":
        """Map a ``[0, 1]`` severity onto a plausible burst-loss regime.

        Severity 0 never enters (and never drops in) the bad state, so
        the channel is loss-free and equivalent to a clean link; severity
        1 spends long stretches in a state that drops ~90 % of packets.
        """
        if not 0.0 <= severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        return cls(
            good_loss=0.0,
            bad_loss=0.9 * severity,
            p_good_to_bad=0.08 * severity,
            p_bad_to_good=max(0.05, 0.4 - 0.3 * severity),
            seed=seed,
        )

    def reset(self) -> None:
        """Restore counters, the Markov state and the RNG stream."""
        self.packets_sent = 0
        self.packets_dropped = 0
        self._bad = False
        self._rng = np.random.default_rng(self.seed)

    def transmit(self, packet: SensorPacket) -> DeliveredPacket | None:
        """Send one packet; ``None`` means the channel dropped it."""
        self.packets_sent += 1
        flip = self.p_bad_to_good if self._bad else self.p_good_to_bad
        if flip > 0.0 and self._rng.random() < flip:
            self._bad = not self._bad
        loss = self.bad_loss if self._bad else self.good_loss
        if loss > 0.0 and self._rng.random() < loss:
            self.packets_dropped += 1
            return None
        latency = self.base_latency_s + self._rng.uniform(0.0, self.jitter_s)
        return DeliveredPacket(
            packet=packet, arrival_time_s=packet.start_time_s + latency
        )

    @property
    def delivery_rate(self) -> float:
        if self.packets_sent == 0:
            return 1.0
        return 1.0 - self.packets_dropped / self.packets_sent


class FaultyChannel:
    """Duplication, reordering and bit-flip corruption over any link.

    Wraps an inner loss model (anything with ``transmit``) and exposes
    :meth:`deliver`, which may return zero, one or several packets per
    send -- the environment drains the list in order.  Every delivery is
    stamped with the sender-side payload CRC *before* corruption, so the
    receiver can detect (and refuse to classify) corrupted payloads.

    Parameters
    ----------
    inner:
        The underlying loss/latency model.
    duplicate_probability:
        Chance a delivered packet arrives twice.
    reorder_probability:
        Chance a delivered packet is held back and swapped with the next
        delivery.
    corrupt_probability:
        Chance the payload suffers ``corrupt_bits`` random bit flips.
    corrupt_bits:
        Bits flipped per corruption event.
    seed:
        Seed of the wrapper's own RNG; :meth:`reset` restores it (and
        resets the inner channel when it supports ``reset``).
    """

    def __init__(
        self,
        inner: WirelessChannel | GilbertElliottChannel | None = None,
        *,
        duplicate_probability: float = 0.0,
        reorder_probability: float = 0.0,
        corrupt_probability: float = 0.0,
        corrupt_bits: int = 8,
        seed: int = 99,
    ) -> None:
        for name, value in (
            ("duplicate_probability", duplicate_probability),
            ("reorder_probability", reorder_probability),
            ("corrupt_probability", corrupt_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if corrupt_bits < 1:
            raise ValueError("corrupt_bits must be >= 1")
        self.inner = inner if inner is not None else WirelessChannel()
        self.duplicate_probability = float(duplicate_probability)
        self.reorder_probability = float(reorder_probability)
        self.corrupt_probability = float(corrupt_probability)
        self.corrupt_bits = int(corrupt_bits)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._held: DeliveredPacket | None = None
        self.packets_duplicated = 0
        self.packets_reordered = 0
        self.packets_corrupted = 0

    # -- counters proxy the inner loss model --------------------------------

    @property
    def packets_sent(self) -> int:
        return self.inner.packets_sent

    @property
    def packets_dropped(self) -> int:
        return self.inner.packets_dropped

    @property
    def delivery_rate(self) -> float:
        return self.inner.delivery_rate

    def reset(self) -> None:
        """Restore the wrapper (and inner channel) to its initial state."""
        if hasattr(self.inner, "reset"):
            self.inner.reset()
        self._rng = np.random.default_rng(self.seed)
        self._held = None
        self.packets_duplicated = 0
        self.packets_reordered = 0
        self.packets_corrupted = 0

    def _corrupt(self, delivered: DeliveredPacket) -> DeliveredPacket:
        """Flip random payload bits, keeping the pre-flight CRC stamp."""
        samples = delivered.packet.samples
        raw = bytearray(np.ascontiguousarray(samples).tobytes())
        for _ in range(self.corrupt_bits):
            position = int(self._rng.integers(0, len(raw)))
            raw[position] ^= 1 << int(self._rng.integers(0, 8))
        corrupted = np.frombuffer(bytes(raw), dtype=samples.dtype)
        self.packets_corrupted += 1
        return replace(
            delivered, packet=replace(delivered.packet, samples=corrupted)
        )

    def deliver(self, packet: SensorPacket) -> list[DeliveredPacket]:
        """Send one packet; returns everything that arrives *now*."""
        delivered = self.inner.transmit(packet)
        arriving: list[DeliveredPacket] = []
        if delivered is not None:
            delivered = replace(delivered, crc32=delivered.packet.payload_crc32())
            if (
                self.corrupt_probability > 0.0
                and self._rng.random() < self.corrupt_probability
            ):
                delivered = self._corrupt(delivered)
            arriving.append(delivered)
            if (
                self.duplicate_probability > 0.0
                and self._rng.random() < self.duplicate_probability
            ):
                self.packets_duplicated += 1
                arriving.append(delivered)
        out: list[DeliveredPacket] = []
        for item in arriving:
            if self._held is not None:
                # The newer packet overtakes the held one.
                out.append(item)
                out.append(self._held)
                self._held = None
                self.packets_reordered += 1
            elif (
                self.reorder_probability > 0.0
                and self._rng.random() < self.reorder_probability
            ):
                self._held = item
            else:
                out.append(item)
        return out

    def drain(self) -> list[DeliveredPacket]:
        """Release any packet still held back for reordering."""
        if self._held is None:
            return []
        held, self._held = self._held, None
        return [held]
