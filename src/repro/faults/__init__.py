"""Fault injection for the wearable deployment.

The paper's enemies in the field are rarely adversaries: body-area links
fade in bursts, electrodes saturate or fall off, clocks drift apart, and
payloads arrive bit-flipped.  This subpackage models those failure modes
as *composable* faults so the robustness experiments can sweep a
``fault type x severity`` grid through the full WIoT environment:

- :mod:`~repro.faults.base` -- the :class:`SensorFault` contract and the
  :class:`FaultInjector` that applies a fault stack to a packet stream;
- :mod:`~repro.faults.sensor` -- sensor-side faults (flatline/lead-off,
  ADC saturation, baseline wander, burst noise, ECG<->ABP clock drift);
- :mod:`~repro.faults.channel` -- channel-side faults (Gilbert-Elliott
  bursty loss, duplication/reordering, CRC-detected bit corruption);
- :mod:`~repro.faults.catalog` -- the named registry the fault-matrix
  study and the CLI sweep over;
- :mod:`~repro.faults.runtime` -- *runtime* chaos: seeded schedules of
  scorer crashes, stalls, slow batches, poison batches, gateway
  kill-and-restart, and snapshot truncation, each asserting the
  supervision layer's conservation and bit-identity invariants.

Every fault honours the *zero-severity contract*: at ``severity == 0`` the
faulty pipeline is bit-identical to the clean one (enforced by tests).
"""

from repro.faults.base import FaultInjector, SensorFault
from repro.faults.catalog import FaultCell, build_fault_cell, fault_names
from repro.faults.channel import FaultyChannel, GilbertElliottChannel
from repro.faults.runtime import (
    ChaosInvariantError,
    ChaosReport,
    RestartChaosReport,
    RuntimeFaultPlan,
    TruncationChaosReport,
    run_chaos_schedule,
    run_restart_chaos,
    run_truncation_chaos,
    schedule_names,
)
from repro.faults.sensor import (
    BaselineWanderFault,
    BurstNoiseFault,
    ClockDriftFault,
    FlatlineFault,
    SaturationFault,
)

__all__ = [
    "BaselineWanderFault",
    "BurstNoiseFault",
    "ChaosInvariantError",
    "ChaosReport",
    "ClockDriftFault",
    "FaultCell",
    "FaultInjector",
    "FaultyChannel",
    "FlatlineFault",
    "GilbertElliottChannel",
    "RestartChaosReport",
    "RuntimeFaultPlan",
    "SaturationFault",
    "SensorFault",
    "TruncationChaosReport",
    "build_fault_cell",
    "fault_names",
    "run_chaos_schedule",
    "run_restart_chaos",
    "run_truncation_chaos",
    "schedule_names",
]
