"""Deterministic runtime chaos harness for the supervised gateway.

The sensor/channel faults elsewhere in this package attack the *data*;
this module attacks the *runtime*: the scorer child crashes mid-batch,
wedges without heartbeating, answers late, or reports a poisoned batch;
the snapshot file loses its tail; the whole gateway dies mid-stream and
restarts from its last snapshot.  Every fault fires on a reproducible
schedule -- a :class:`RuntimeFaultPlan` keyed by the supervisor's global
request ordinal, built from an explicit seed -- so a chaos run is a
regression test, not a dice roll.

Three runners cover the fault surface, each asserting its invariants and
returning a structured report the orchestrator's ``chaos`` study lands
in ``BENCH_*.json``:

* :func:`run_chaos_schedule` -- drives a wearer fleet through a
  supervised gateway while the plan injects scorer crash / stall / slow
  / poison faults child-side, then asserts the conservation invariant
  (``verdicts + shed + incomplete + vanished == sent``), zero leaked
  sessions, and that every injected fault class was actually *detected*
  by its intended signal.
* :func:`run_restart_chaos` -- streams a small fleet, snapshots on a
  cadence, kills the gateway mid-stream (``abort``: no drain, no
  finalize), restores a fresh gateway from the store and replays from
  each wearer's resume point, then proves the combined verdict stream is
  bit-identical to an uninterrupted run outside the restart window and
  that duplicates are confined *inside* it.
* :func:`run_truncation_chaos` -- truncates a snapshot file at every
  byte boundary class (mid-session-line, mid-commit, clean) and asserts
  the store always falls back to the newest fully-committed epoch --
  never crashing, never serving a torn epoch.

Invariant violations raise :class:`ChaosInvariantError`; the CLI maps
that to a non-zero exit so CI's chaos smoke fails loudly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.gateway.gateway import IngestionGateway
from repro.gateway.loadgen import LoadReport, run_gateway_load, train_serving_detectors
from repro.gateway.session import SessionVerdict
from repro.gateway.snapshot import SessionSnapshotStore
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sensor import BodySensor

__all__ = [
    "ChaosInvariantError",
    "ChaosReport",
    "RestartChaosReport",
    "RuntimeFaultPlan",
    "TruncationChaosReport",
    "run_chaos_schedule",
    "run_restart_chaos",
    "run_truncation_chaos",
    "schedule_names",
]


class ChaosInvariantError(AssertionError):
    """A chaos run violated a serving invariant (this is a release blocker)."""


@dataclass(frozen=True)
class RuntimeFaultPlan:
    """Which supervisor request ordinals fail, and how.

    Ordinals are global and per-*attempt* (a retried batch gets a fresh
    ordinal), so a plan poisons specific attempts, not batches forever.
    At most one action per ordinal; construction rejects overlaps so a
    schedule is unambiguous.  The plan crosses the process boundary into
    the scorer child (it must stay picklable: plain frozensets/dicts).
    """

    crash: frozenset = frozenset()
    stall: frozenset = frozenset()
    slow: dict = field(default_factory=dict)  # ordinal -> delay seconds
    poison: frozenset = frozenset()

    def __post_init__(self) -> None:
        sets = [self.crash, self.stall, frozenset(self.slow), self.poison]
        total = sum(len(s) for s in sets)
        if len(frozenset().union(*sets)) != total:
            raise ValueError("fault plan assigns multiple actions to one ordinal")

    @property
    def n_faults(self) -> int:
        return (
            len(self.crash) + len(self.stall) + len(self.slow) + len(self.poison)
        )

    def action_for(self, ordinal: int) -> tuple[str, float] | None:
        """The injected action for one request attempt, if any."""
        if ordinal in self.crash:
            return ("crash", 0.0)
        if ordinal in self.stall:
            return ("stall", 0.0)
        if ordinal in self.slow:
            return ("slow", float(self.slow[ordinal]))
        if ordinal in self.poison:
            return ("poison", 0.0)
        return None

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_ordinals: int,
        crash_rate: float = 0.0,
        stall_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_s: float = 0.0,
        poison_rate: float = 0.0,
    ) -> "RuntimeFaultPlan":
        """Draw a reproducible plan over ordinals ``1..n_ordinals``.

        Each ordinal suffers at most one fault; the draw is a single
        pass over a seeded permutation, so the same seed always yields
        the same plan regardless of rate order.
        """
        rng = np.random.default_rng(seed)
        ordinals = rng.permutation(np.arange(1, n_ordinals + 1))

        def _count(rate: float) -> int:
            # A requested fault kind always fires at least once -- a
            # rate rounding to zero injections would silently test
            # nothing.
            return max(1, int(round(rate * n_ordinals))) if rate > 0 else 0

        counts = {
            "crash": _count(crash_rate),
            "stall": _count(stall_rate),
            "slow": _count(slow_rate),
            "poison": _count(poison_rate),
        }
        if sum(counts.values()) > n_ordinals:
            raise ValueError("fault rates sum past 1.0")
        cursor = 0
        picked: dict[str, list[int]] = {}
        for kind, count in counts.items():
            picked[kind] = [int(o) for o in ordinals[cursor : cursor + count]]
            cursor += count
        return cls(
            crash=frozenset(picked["crash"]),
            stall=frozenset(picked["stall"]),
            slow={o: float(slow_s) for o in picked["slow"]},
            poison=frozenset(picked["poison"]),
        )


# -- schedule library ---------------------------------------------------

#: Supervisor knobs every chaos schedule runs with: tight watchdog and
#: backoff timings so a smoke run detects and recovers in milliseconds,
#: not production seconds.  The *policy* under test is identical.
_CHAOS_SUPERVISOR_KNOBS = {
    "heartbeat_interval_s": 0.01,
    "heartbeat_timeout_s": 0.15,
    "batch_timeout_s": 0.9,
    "max_retries": 2,
    "backoff_base_s": 0.01,
    "backoff_cap_s": 0.05,
    "breaker_threshold": 2,
    "breaker_cooldown_batches": 4,
}

#: Named fault mixes (rates over request ordinals).  ``slow_s`` is set
#: beyond the batch timeout so slow batches are *detected*, not merely
#: tolerated.
_SCHEDULES: dict[str, dict] = {
    "crash": {"crash_rate": 0.2},
    "stall": {"stall_rate": 0.12},
    "slow": {"slow_rate": 0.12, "slow_s": 1.2},
    "poison": {"poison_rate": 0.2},
    "mixed": {
        "crash_rate": 0.08,
        "stall_rate": 0.06,
        "slow_rate": 0.06,
        "slow_s": 1.2,
        "poison_rate": 0.08,
    },
}

#: Which SupervisorStats counter must move for each injected fault kind
#: (the detection-signal contract of the failure-mode table).
_DETECTOR_OF = {
    "crash": "crashes",
    "stall": "stalls",
    "slow": "timeouts",
    "poison": "poisons",
}


def schedule_names() -> list[str]:
    """The named fault schedules, in presentation order."""
    return list(_SCHEDULES)


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one seeded fault schedule against a supervised fleet."""

    schedule: str
    seed: int
    planned_faults: int
    report: LoadReport
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_payload(self) -> dict:
        """JSON-ready record for the orchestrator's chaos study."""
        sup = self.report.supervisor
        stats = self.report.stats
        return {
            "schedule": self.schedule,
            "seed": self.seed,
            "planned_faults": self.planned_faults,
            "windows_sent": self.report.windows_sent,
            "verdicts": stats.verdicts,
            "windows_shed": stats.windows_shed,
            "incomplete_windows": stats.incomplete_windows,
            "windows_vanished": self.report.windows_vanished,
            "windows_unscorable": stats.windows_unscorable,
            "conservation_ok": self.report.conservation_ok,
            "faults_detected": sup.faults,
            "crashes": sup.crashes,
            "stalls": sup.stalls,
            "timeouts": sup.timeouts,
            "poisons": sup.poisons,
            "restarts": sup.restarts,
            "breaker_trips": sup.breaker_trips,
            "windows_degraded": sup.windows_degraded,
            "mean_recovery_ms": sup.mean_recovery_s * 1e3,
            "ok": self.ok,
            "violations": list(self.violations),
        }


def run_chaos_schedule(
    schedule: str,
    seed: int = 2017,
    n_wearers: int = 8,
    stream_s: float = 12.0,
    batch_size: int = 8,
    strict: bool = True,
) -> ChaosReport:
    """Drive a supervised fleet through one named fault schedule.

    The plan is drawn over an ordinal budget sized from the expected
    batch count, injected child-side, and the run is then audited:
    conservation must close exactly, no session may leak, and every
    fault kind the plan injected must have been detected by its intended
    signal (a crash plan that records zero crashes means the watchdog is
    blind, not that the fleet got lucky).  ``strict=True`` raises
    :class:`ChaosInvariantError` on any violation; ``strict=False``
    returns the report with ``violations`` populated (the orchestrator
    records outcomes; CI enforces them).
    """
    if schedule not in _SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; pick from {schedule_names()}"
        )
    rates = _SCHEDULES[schedule]
    # Ordinal budget: a conservative *lower* bound on how many score
    # requests the run will actually issue (total windows over twice the
    # batch size -- batches can close smaller on linger, never larger).
    # Planning inside the bound guarantees every planned fault fires;
    # requests past it (including retries) simply run clean.
    windows_per_wearer = max(1, int(stream_s / 3.0))
    n_ordinals = max(4, (n_wearers * windows_per_wearer) // (2 * batch_size))
    plan = RuntimeFaultPlan.seeded(seed, n_ordinals, **rates)
    report = run_gateway_load(
        n_wearers=n_wearers,
        stream_s=stream_s,
        batch_size=batch_size,
        loss_probability=0.02,
        seed=seed,
        supervised=True,
        fault_plan=plan,
        supervisor_knobs=dict(_CHAOS_SUPERVISOR_KNOBS),
    )
    violations: list[str] = []
    if not report.conservation_ok:
        stats = report.stats
        violations.append(
            "conservation violated: "
            f"{stats.verdicts} verdicts + {stats.windows_shed} shed + "
            f"{stats.incomplete_windows} incomplete + "
            f"{report.windows_vanished} vanished != "
            f"{report.windows_sent} sent"
        )
    if report.leaked_sessions:
        violations.append(f"{report.leaked_sessions} sessions leaked")
    sup = report.supervisor
    planned_by_kind = {
        "crash": len(plan.crash),
        "stall": len(plan.stall),
        "slow": len(plan.slow),
        "poison": len(plan.poison),
    }
    for kind, planned in planned_by_kind.items():
        counter = _DETECTOR_OF[kind]
        if planned > 0 and getattr(sup, counter) == 0:
            violations.append(
                f"injected {planned} {kind} fault(s) but the "
                f"{counter!r} detection counter never moved"
            )
    chaos = ChaosReport(
        schedule=schedule,
        seed=seed,
        planned_faults=plan.n_faults,
        report=report,
        violations=tuple(violations),
    )
    if strict and not chaos.ok:
        raise ChaosInvariantError("; ".join(chaos.violations))
    return chaos


# -- restart-mid-stream chaos ------------------------------------------


@dataclass(frozen=True)
class RestartChaosReport:
    """Outcome of one kill-and-restore run against the snapshot plane."""

    n_wearers: int
    n_windows_per_wearer: int
    snapshot_window: int  # windows verdicted before the snapshot
    crash_window: int  # windows verdicted before the kill
    restart_window_verdicts: int  # duplicated verdicts (allowed zone)
    bit_identical_outside_restart: bool
    episodes_match: bool
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_payload(self) -> dict:
        return {
            "n_wearers": self.n_wearers,
            "n_windows_per_wearer": self.n_windows_per_wearer,
            "snapshot_window": self.snapshot_window,
            "crash_window": self.crash_window,
            "restart_window_verdicts": self.restart_window_verdicts,
            "bit_identical_outside_restart": self.bit_identical_outside_restart,
            "episodes_match": self.episodes_match,
            "ok": self.ok,
            "violations": list(self.violations),
        }


def _verdict_key(verdict: SessionVerdict) -> tuple:
    """The bit-identity fingerprint of one verdict.

    Decision values compare by *bit pattern* (NaN abstains included), so
    two runs agree only if scoring was literally identical.
    """
    return (
        verdict.sequence,
        verdict.abstained,
        np.float64(verdict.decision_value).tobytes(),
        verdict.altered,
        verdict.version,
    )


def _wearer_deliveries(
    detectors_data, n_wearers: int, stream_s: float
) -> dict[str, list[tuple[DeliveredPacket, DeliveredPacket]]]:
    """Lossless per-wearer delivery pairs (the restart harness replays
    from exact sequence numbers, so the channel must not drop)."""
    data = detectors_data
    records = [
        data.record(subject, stream_s, purpose="test")
        for subject in data.subjects[: min(4, len(data.subjects))]
    ]
    streams: dict[str, list[tuple[DeliveredPacket, DeliveredPacket]]] = {}
    for i in range(n_wearers):
        record = records[i % len(records)]
        ecg = BodySensor(f"w{i}-ecg", "ecg", record)
        abp = BodySensor(f"w{i}-abp", "abp", record)
        streams[f"wearer-{i:05d}"] = [
            (
                DeliveredPacket(packet=e, arrival_time_s=e.start_time_s),
                DeliveredPacket(packet=a, arrival_time_s=a.start_time_s),
            )
            for e, a in zip(ecg.packets(), abp.packets())
        ]
    return streams


async def _feed_windows(
    gateway: IngestionGateway,
    streams: dict[str, list[tuple[DeliveredPacket, DeliveredPacket]]],
    start: int,
    stop: int,
) -> None:
    """Submit window indexes ``start..stop-1`` of every wearer, round-robin."""
    for index in range(start, stop):
        for wearer_id, pairs in streams.items():
            if index >= len(pairs):
                continue
            ecg, abp = pairs[index]
            gateway.submit(wearer_id, ecg)
            gateway.submit(wearer_id, abp)
        await asyncio.sleep(0)


def run_restart_chaos(
    store_path: str | Path,
    seed: int = 2017,
    n_wearers: int = 4,
    stream_s: float = 30.0,
    snapshot_at: int = 4,
    crash_at: int = 7,
    strict: bool = True,
) -> RestartChaosReport:
    """Kill the gateway mid-stream and prove the restore contract.

    Runs three gateways over identical per-wearer streams: a reference
    that never stops; a victim that snapshots after ``snapshot_at``
    windows, keeps serving, and is killed (``abort``, no drain/finalize)
    after ``crash_at``; and a successor restored from the store that
    replays from each wearer's resume point.  Asserts:

    * every wearer resumes (resume points exist for all sessions);
    * outside the restart window ``[snapshot_at, crash_at)`` (window
      indexes verdicted after the snapshot but before the kill) each
      window has exactly one verdict, bit-identical to the reference;
    * inside it, duplicates are allowed but must be bit-identical too
      (the restart re-scores, it never re-invents);
    * final episodes per wearer match the reference exactly.
    """
    if not 0 < snapshot_at < crash_at:
        raise ValueError("need 0 < snapshot_at < crash_at")
    data, fitted = train_serving_detectors(versions=["original"], seed=seed)
    primary = next(iter(fitted.values()))
    streams = _wearer_deliveries(data, n_wearers, stream_s)
    n_windows = min(len(pairs) for pairs in streams.values())
    if crash_at >= n_windows:
        raise ValueError(
            f"crash_at={crash_at} must precede end of stream ({n_windows})"
        )
    store = SessionSnapshotStore(store_path)

    def _gateway(sink: list[SessionVerdict]) -> IngestionGateway:
        # Backpressure disabled on purpose: the restart contract is
        # about state continuity; shed windows would just blur the
        # verdict comparison.
        return IngestionGateway(
            primary,
            batch_size=16,
            linger_s=0.0,
            queue_windows=65536,
            max_inflight_per_session=65536,
            on_verdict=sink.append,
        )

    reference: list[SessionVerdict] = []
    before: list[SessionVerdict] = []
    after: list[SessionVerdict] = []
    episodes_ref: dict[str, list] = {}
    episodes_got: dict[str, list] = {}

    async def _run() -> None:
        # 1. The uninterrupted reference.
        ref = _gateway(reference)
        ref.start()
        await _feed_windows(ref, streams, 0, n_windows)
        await ref.drain()
        for wearer_id in streams:
            episodes_ref[wearer_id] = list(ref.session(wearer_id).episodes)
        await ref.shutdown()
        # 2. The victim: snapshot, keep serving, die.
        victim = _gateway(before)
        victim.start()
        await _feed_windows(victim, streams, 0, snapshot_at)
        await victim.snapshot(store)
        await _feed_windows(victim, streams, snapshot_at, crash_at)
        await victim.drain()  # verdicts up to crash_at are emitted...
        await victim.abort()  # ...then the process "dies": no finalize.
        # 3. The successor: restore, replay from the resume points.
        successor = _gateway(after)
        resume_points = successor.restore_sessions(store)
        successor.start()
        resume_from = min(
            (point + 1 for point in resume_points.values()),
            default=0,
        )
        await _feed_windows(successor, streams, resume_from, n_windows)
        await successor.drain()
        for wearer_id in streams:
            episodes_got[wearer_id] = list(
                successor.session(wearer_id).episodes
            )
        await successor.shutdown()
        if not resume_points:
            raise ChaosInvariantError("restore produced no resume points")
        missing = set(streams) - set(resume_points)
        if missing:
            raise ChaosInvariantError(
                f"wearers lost across restart: {sorted(missing)}"
            )

    asyncio.run(_run())

    violations: list[str] = []
    restart_duplicates = 0
    by_wearer_ref: dict[str, dict[int, tuple]] = {}
    for verdict in reference:
        by_wearer_ref.setdefault(verdict.wearer_id, {})[verdict.sequence] = (
            _verdict_key(verdict)
        )
    combined: dict[str, dict[int, list[tuple]]] = {}
    for verdict in [*before, *after]:
        combined.setdefault(verdict.wearer_id, {}).setdefault(
            verdict.sequence, []
        ).append(_verdict_key(verdict))
    for wearer_id, expected in by_wearer_ref.items():
        got = combined.get(wearer_id, {})
        for sequence, key in expected.items():
            keys = got.get(sequence, [])
            if not keys:
                violations.append(
                    f"{wearer_id} window {sequence}: verdict lost"
                )
                continue
            if any(k != key for k in keys):
                violations.append(
                    f"{wearer_id} window {sequence}: verdict differs "
                    "from the uninterrupted run"
                )
            if len(keys) > 1:
                restart_duplicates += len(keys) - 1
                if not snapshot_at <= sequence < crash_at:
                    violations.append(
                        f"{wearer_id} window {sequence}: duplicated "
                        "outside the restart window"
                    )
        extra = set(got) - set(expected)
        if extra:
            violations.append(
                f"{wearer_id}: verdicts for never-referenced windows "
                f"{sorted(extra)}"
            )
    episodes_match = episodes_ref == episodes_got
    if not episodes_match:
        violations.append("episode history diverged across the restart")
    report = RestartChaosReport(
        n_wearers=n_wearers,
        n_windows_per_wearer=n_windows,
        snapshot_window=snapshot_at,
        crash_window=crash_at,
        restart_window_verdicts=restart_duplicates,
        bit_identical_outside_restart=not any(
            "differs" in v or "lost" in v or "outside" in v for v in violations
        ),
        episodes_match=episodes_match,
        violations=tuple(violations),
    )
    if strict and not report.ok:
        raise ChaosInvariantError("; ".join(report.violations))
    return report


# -- snapshot truncation chaos ------------------------------------------


@dataclass(frozen=True)
class TruncationChaosReport:
    """Outcome of tail-truncating a snapshot file at every byte."""

    file_bytes: int
    points_checked: int
    recovered_epochs: tuple[int, ...]
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_payload(self) -> dict:
        return {
            "file_bytes": self.file_bytes,
            "points_checked": self.points_checked,
            "max_recovered_epoch": max(self.recovered_epochs, default=0),
            "ok": self.ok,
            "violations": list(self.violations),
        }


def run_truncation_chaos(
    work_dir: str | Path,
    seed: int = 2017,
    n_wearers: int = 2,
    stream_s: float = 18.0,
    n_points: int = 64,
    strict: bool = True,
) -> TruncationChaosReport:
    """Crash the snapshot *file* instead of the process.

    Writes two committed epochs by actually serving a small fleet, then
    replays power-loss at ``n_points`` evenly spaced truncation lengths
    (plus the exact commit boundaries).  At every point the store must
    load without raising and return the newest epoch whose commit line
    survived intact -- epoch 2 only with its commit, epoch 1 when the
    tail ate epoch 2, nothing when even epoch 1 is torn.  Each recovered
    epoch must also restore cleanly into a fresh gateway.
    """
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    data, fitted = train_serving_detectors(versions=["original"], seed=seed)
    primary = next(iter(fitted.values()))
    streams = _wearer_deliveries(data, n_wearers, stream_s)
    n_windows = min(len(pairs) for pairs in streams.values())
    source = work_dir / "snapshots.jsonl"
    store = SessionSnapshotStore(source)

    def _gateway() -> IngestionGateway:
        return IngestionGateway(
            primary,
            batch_size=16,
            linger_s=0.0,
            queue_windows=65536,
            max_inflight_per_session=65536,
        )

    async def _write_epochs() -> None:
        gateway = _gateway()
        gateway.start()
        await _feed_windows(gateway, streams, 0, n_windows // 2)
        await gateway.snapshot(store)
        await _feed_windows(gateway, streams, n_windows // 2, n_windows)
        await gateway.snapshot(store)
        await gateway.shutdown()

    asyncio.run(_write_epochs())
    blob = source.read_bytes()
    points = sorted(
        {
            *(int(round(f * len(blob))) for f in np.linspace(0.0, 1.0, n_points)),
            len(blob),
        }
    )
    violations: list[str] = []
    recovered: list[int] = []
    torn = work_dir / "snapshots.torn.jsonl"
    for cut in points:
        torn.write_bytes(blob[:cut])
        torn_store = SessionSnapshotStore(torn)
        try:
            loaded = torn_store.load()
        except Exception as exc:  # noqa: BLE001 -- any raise is the failure
            violations.append(
                f"truncation at byte {cut}: load raised {type(exc).__name__}"
            )
            continue
        if loaded is None:
            recovered.append(0)
            if cut == len(blob):
                violations.append("untruncated file lost both epochs")
            continue
        epoch, _, session_states = loaded
        recovered.append(epoch)
        probe = _gateway()
        try:
            resume_points = probe.restore_sessions(torn_store)
        except Exception as exc:  # noqa: BLE001 -- any raise is the failure
            violations.append(
                f"truncation at byte {cut}: restore of epoch {epoch} "
                f"raised {type(exc).__name__}"
            )
            continue
        if sorted(resume_points) != sorted(
            state["wearer_id"] for state in session_states
        ):
            violations.append(
                f"truncation at byte {cut}: epoch {epoch} restored the "
                "wrong session set"
            )
    if recovered and max(recovered) < 2:
        violations.append("the fully intact file never recovered epoch 2")
    if any(
        later < earlier
        for earlier, later in zip(recovered, recovered[1:])
    ):
        violations.append("recovered epoch went backwards as bytes grew")
    report = TruncationChaosReport(
        file_bytes=len(blob),
        points_checked=len(points),
        recovered_epochs=tuple(recovered),
        violations=tuple(violations),
    )
    if strict and not report.ok:
        raise ChaosInvariantError("; ".join(report.violations))
    return report
