"""Sensor-side fault models.

Each fault rewrites the *samples* (and, where physical, the peak
metadata) of individual packets, mimicking what a wearable front end
actually emits under the failure: a lead-off electrode flatlines, a
saturated ADC clips, motion adds impulsive bursts, respiration and cable
sway add baseline wander, and free-running sensor clocks drift the two
channels apart.  All faults return a *new* packet (packets are frozen);
an untouched packet is returned as-is so identity checks stay cheap.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.faults.base import SensorFault
from repro.wiot.sensor import SensorPacket

__all__ = [
    "BaselineWanderFault",
    "BurstNoiseFault",
    "ClockDriftFault",
    "FlatlineFault",
    "SaturationFault",
]


class FlatlineFault(SensorFault):
    """Lead-off / disconnected electrode: a segment pins to one value.

    With probability ``severity`` a packet gets a contiguous flat segment
    covering ``severity`` of its span, held at the signal value where the
    dropout began.  Peaks inside the dead segment are removed -- a real
    peak detector finds no beats on a flat trace.
    """

    def apply(
        self, packet: SensorPacket, rng: np.random.Generator
    ) -> SensorPacket:
        if rng.random() >= self.severity:
            return packet
        n = packet.samples.size
        length = max(1, int(round(self.severity * n)))
        start = int(rng.integers(0, max(1, n - length + 1)))
        samples = packet.samples.copy()
        samples[start : start + length] = samples[start]
        peaks = np.asarray(packet.peak_indexes)
        keep = (peaks < start) | (peaks >= start + length)
        return replace(packet, samples=samples, peak_indexes=peaks[keep])


class SaturationFault(SensorFault):
    """ADC saturation: the dynamic range collapses and extremes clip.

    Severity shrinks the usable range symmetrically: the packet is
    clipped to its ``[45 * s, 100 - 45 * s]`` percentile band, so
    severity 1 squashes everything into the inter-decile core.
    Deterministic (no RNG) -- saturation hits every packet alike.
    """

    def apply(
        self, packet: SensorPacket, rng: np.random.Generator
    ) -> SensorPacket:
        q = 45.0 * self.severity
        lo, hi = np.percentile(packet.samples, [q, 100.0 - q])
        if lo >= hi:
            hi = lo
        return replace(packet, samples=np.clip(packet.samples, lo, hi))


class BaselineWanderFault(SensorFault):
    """Low-frequency baseline drift (respiration, cable sway).

    Adds a sinusoid at ``frequency_hz`` with a random per-packet phase
    and an amplitude of ``severity/2`` of the packet's peak-to-peak span.
    """

    def __init__(self, severity: float, frequency_hz: float = 0.3) -> None:
        super().__init__(severity)
        if frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        self.frequency_hz = float(frequency_hz)

    def apply(
        self, packet: SensorPacket, rng: np.random.Generator
    ) -> SensorPacket:
        samples = packet.samples
        span = float(np.max(samples) - np.min(samples))
        amplitude = 0.5 * self.severity * span
        phase = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(samples.size) / packet.sample_rate
        wander = amplitude * np.sin(2.0 * np.pi * self.frequency_hz * t + phase)
        return replace(packet, samples=samples + wander)


class BurstNoiseFault(SensorFault):
    """Impulsive additive noise bursts (motion artifacts, EMG pickup).

    With probability ``severity`` a packet receives one Gaussian burst
    covering ~5 % of the window, scaled to ``4 * severity`` of the
    packet's standard deviation -- impulsive enough to trip the SQI's
    burst-energy check at high severity.
    """

    def apply(
        self, packet: SensorPacket, rng: np.random.Generator
    ) -> SensorPacket:
        if rng.random() >= self.severity:
            return packet
        samples = packet.samples.copy()
        n = samples.size
        length = max(1, n // 20)
        start = int(rng.integers(0, max(1, n - length + 1)))
        scale = 4.0 * self.severity * float(np.std(samples))
        samples[start : start + length] += scale * rng.standard_normal(length)
        return replace(packet, samples=samples)


class ClockDriftFault(SensorFault):
    """ECG<->ABP desynchronization from free-running sensor clocks.

    The affected channels accumulate ``severity * max_drift_s_per_packet``
    of skew per packet; each packet is circularly shifted by the
    accumulated drift (peak indexes shift with it), so the two channels
    silently slide apart over the stream.  Stateful: :meth:`reset` clears
    the accumulated skew.
    """

    def __init__(
        self,
        severity: float,
        channels: tuple[str, ...] = ("abp",),
        max_drift_s_per_packet: float = 0.05,
    ) -> None:
        super().__init__(severity)
        if not channels:
            raise ValueError("need at least one channel to drift")
        for channel in channels:
            if channel not in ("ecg", "abp"):
                raise ValueError(f"unknown channel: {channel!r}")
        if max_drift_s_per_packet <= 0:
            raise ValueError("max_drift_s_per_packet must be positive")
        self.channels = tuple(channels)
        self.max_drift_s_per_packet = float(max_drift_s_per_packet)
        self._drift_s: dict[str, float] = {}

    def reset(self) -> None:
        self._drift_s = {}

    def apply(
        self, packet: SensorPacket, rng: np.random.Generator
    ) -> SensorPacket:
        if packet.channel not in self.channels:
            return packet
        drift = self._drift_s.get(packet.channel, 0.0)
        drift += self.severity * self.max_drift_s_per_packet
        self._drift_s[packet.channel] = drift
        shift = int(round(drift * packet.sample_rate))
        if shift == 0:
            return packet
        n = packet.samples.size
        shift %= n
        samples = np.roll(packet.samples, shift)
        peaks = np.sort((np.asarray(packet.peak_indexes) + shift) % n)
        return replace(packet, samples=samples, peak_indexes=peaks)
