"""The named fault registry behind the fault-matrix study and CLI.

Each entry maps a fault name to a builder that, given a severity and a
seed, produces one :class:`FaultCell`: the sensor-side injector (if any)
plus the channel to deploy.  Sensor faults run over a lossless channel so
the matrix isolates one failure mode per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.base import FaultInjector
from repro.faults.channel import FaultyChannel, GilbertElliottChannel
from repro.faults.sensor import (
    BaselineWanderFault,
    BurstNoiseFault,
    ClockDriftFault,
    FlatlineFault,
    SaturationFault,
)
from repro.wiot.channel import WirelessChannel

__all__ = ["FaultCell", "build_fault_cell", "fault_names"]


@dataclass(frozen=True)
class FaultCell:
    """One (fault, severity) cell of the robustness matrix."""

    name: str
    severity: float
    injector: FaultInjector | None
    channel: object  # anything with transmit() or deliver()


def _sensor_cell(fault_cls):
    def build(severity: float, seed: int) -> FaultCell:
        return FaultCell(
            name="",
            severity=severity,
            injector=FaultInjector([fault_cls(severity)], seed=seed),
            channel=WirelessChannel(seed=seed),
        )

    return build


def _bursty_loss_cell(severity: float, seed: int) -> FaultCell:
    return FaultCell(
        name="",
        severity=severity,
        injector=None,
        channel=GilbertElliottChannel.from_severity(severity, seed=seed),
    )


def _corruption_cell(severity: float, seed: int) -> FaultCell:
    return FaultCell(
        name="",
        severity=severity,
        injector=None,
        channel=FaultyChannel(
            WirelessChannel(seed=seed),
            corrupt_probability=severity,
            seed=seed + 1,
        ),
    )


def _duplication_cell(severity: float, seed: int) -> FaultCell:
    return FaultCell(
        name="",
        severity=severity,
        injector=None,
        channel=FaultyChannel(
            WirelessChannel(seed=seed),
            duplicate_probability=severity,
            reorder_probability=severity / 2.0,
            seed=seed + 1,
        ),
    )


_CATALOG = {
    "flatline": _sensor_cell(FlatlineFault),
    "saturation": _sensor_cell(SaturationFault),
    "baseline_wander": _sensor_cell(BaselineWanderFault),
    "burst_noise": _sensor_cell(BurstNoiseFault),
    "clock_drift": _sensor_cell(ClockDriftFault),
    "bursty_loss": _bursty_loss_cell,
    "corruption": _corruption_cell,
    "duplication": _duplication_cell,
}


def fault_names() -> tuple[str, ...]:
    """Every fault the matrix knows, in catalog order."""
    return tuple(_CATALOG)


def build_fault_cell(name: str, severity: float, seed: int = 0) -> FaultCell:
    """Instantiate one (fault, severity) cell from the registry."""
    try:
        builder = _CATALOG[name]
    except KeyError:
        valid = ", ".join(_CATALOG)
        raise ValueError(
            f"unknown fault {name!r}; expected one of: {valid}"
        ) from None
    if not 0.0 <= severity <= 1.0:
        raise ValueError("severity must be in [0, 1]")
    cell = builder(float(severity), int(seed))
    return FaultCell(
        name=name,
        severity=cell.severity,
        injector=cell.injector,
        channel=cell.channel,
    )
