"""The 2-D portrait: SIFT's joint representation of ECG and ABP.

``w`` seconds of synchronously measured ABP ``a(t)`` and ECG ``e(t)`` are
min-max normalized to [0, 1] and combined point-wise into the portrait
``P = { (a(t), e(t)) }`` -- a Lissajous-like figure whose shape encodes how
the two signals track each other.  Characteristic points (R peaks, systolic
peaks) map to specific portrait locations; the matrix features view the
portrait as an occupancy grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.dataset import SignalWindow
from repro.signals.peaks import match_peaks

__all__ = ["Portrait", "build_portrait", "normalize_signal"]


def normalize_signal(signal: np.ndarray) -> np.ndarray:
    """Min-max normalize a window to [0, 1].

    A constant window (zero dynamic range -- e.g. a flat-lined hijacked
    sensor) maps to all 0.5, keeping the portrait well-defined.
    """
    signal = np.asarray(signal, dtype=np.float64)
    low = float(np.min(signal))
    high = float(np.max(signal))
    if high <= low:
        return np.full(signal.shape, 0.5)
    return (signal - low) / (high - low)


@dataclass(frozen=True)
class Portrait:
    """A normalized 2-D portrait with its characteristic points.

    Attributes
    ----------
    x / y:
        Normalized ABP (x) and ECG (y) sample values; ``(x[t], y[t])`` is
        the portrait point at sample ``t``.
    r_peaks / systolic_peaks:
        Sample indices (into ``x``/``y``) of the window's R peaks and
        systolic peaks.
    peak_pairs:
        ``(r_index, systolic_index)`` pairs matching each R peak with its
        corresponding systolic peak (the one that follows it within a
        physiological transit lag).
    """

    x: np.ndarray
    y: np.ndarray
    r_peaks: np.ndarray
    systolic_peaks: np.ndarray
    peak_pairs: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.x.shape != self.y.shape or self.x.ndim != 1:
            raise ValueError("portrait coordinates must be equal-length 1-D arrays")

    @property
    def n_points(self) -> int:
        return int(self.x.size)

    def points(self) -> np.ndarray:
        """The portrait as an (n, 2) array of (x, y) points."""
        return np.column_stack([self.x, self.y])

    def r_peak_points(self) -> np.ndarray:
        """Portrait coordinates of the R peaks, shape (m, 2)."""
        return np.column_stack([self.x[self.r_peaks], self.y[self.r_peaks]])

    def systolic_peak_points(self) -> np.ndarray:
        """Portrait coordinates of the systolic peaks, shape (k, 2)."""
        return np.column_stack(
            [self.x[self.systolic_peaks], self.y[self.systolic_peaks]]
        )

    def paired_peak_points(self) -> tuple[np.ndarray, np.ndarray]:
        """(R points, matching systolic points), both shape (p, 2)."""
        if not self.peak_pairs:
            empty = np.empty((0, 2))
            return empty, empty
        r_idx = np.array([pair[0] for pair in self.peak_pairs], dtype=np.intp)
        s_idx = np.array([pair[1] for pair in self.peak_pairs], dtype=np.intp)
        r_points = np.column_stack([self.x[r_idx], self.y[r_idx]])
        s_points = np.column_stack([self.x[s_idx], self.y[s_idx]])
        return r_points, s_points

    def occupancy_matrix(self, n: int = 50) -> np.ndarray:
        """The n x n count matrix C over the portrait.

        Element ``C[i, j]`` counts portrait points whose ECG value falls in
        column ``j`` and ABP value in row ``i`` of a uniform grid over
        [0, 1]^2 (points at exactly 1.0 land in the last cell).  Columns
        index the *ECG* axis so that the column averages -- the basis of
        two of the matrix features -- form the ECG occupancy profile, the
        marginal that changes when the ECG stream is hijacked.
        """
        if n < 1:
            raise ValueError("grid size must be >= 1")
        col = np.minimum((self.y * n).astype(np.intp), n - 1)
        row = np.minimum((self.x * n).astype(np.intp), n - 1)
        matrix = np.zeros((n, n), dtype=np.int64)
        np.add.at(matrix, (row, col), 1)
        return matrix


def build_portrait(window: SignalWindow, max_lag_s: float = 0.6) -> Portrait:
    """Build the portrait of one signal window.

    Peak pairing uses the same physiological rule as the signal substrate:
    an R peak corresponds to the first systolic peak that follows it within
    ``max_lag_s`` seconds.
    """
    pairs = match_peaks(
        window.r_peaks, window.systolic_peaks, window.sample_rate, max_lag_s
    )
    return Portrait(
        x=normalize_signal(window.abp),
        y=normalize_signal(window.ecg),
        r_peaks=np.asarray(window.r_peaks, dtype=np.intp),
        systolic_peaks=np.asarray(window.systolic_peaks, dtype=np.intp),
        peak_pairs=tuple(pairs),
    )
