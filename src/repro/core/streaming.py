"""Online streaming detection with alert debouncing.

The paper's detector labels each 3-second window independently and alerts
on every positive.  Operationally that is noisy: a single false positive
buzzes the wearer, and a single false negative during a sustained attack
is irrelevant if neighbouring windows fire.  :class:`StreamingDetector`
wraps a trained :class:`~repro.core.detector.SIFTDetector` with a k-of-n
voting debouncer: an *attack episode* starts when at least ``k`` of the
last ``n`` windows are positive and ends when the window votes drop to
zero, trading per-window errors for episode-level precision and a bounded
detection latency of at most ``k`` windows.

Graceful degradation: an optional
:class:`~repro.signals.quality.SignalQualityIndex` gate makes the
detector *abstain* on unusable windows (tracked coverage loss, not a
silent skip), and an optional degradation controller (see
:class:`~repro.adaptive.degradation.DegradationController`) falls back to
lighter detector tiers under sustained degradation, recovering with
hysteresis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.detector import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.signals.dataset import SignalWindow
from repro.signals.quality import SignalQualityIndex

if TYPE_CHECKING:
    from repro.adaptive.degradation import DegradationController

__all__ = ["AttackEpisode", "StreamingDetector", "StreamingState"]


@dataclass(frozen=True)
class AttackEpisode:
    """A contiguous run of windows judged to be under attack."""

    start_index: int
    end_index: int  # inclusive
    start_time_s: float
    end_time_s: float
    peak_decision_value: float

    def __post_init__(self) -> None:
        if self.end_index < self.start_index:
            raise ValueError("episode must end at or after its start")

    @property
    def n_windows(self) -> int:
        return self.end_index - self.start_index + 1

    @property
    def duration_s(self) -> float:
        return self.end_time_s - self.start_time_s


@dataclass
class StreamingState:
    """Mutable debouncer state (separated for inspectability).

    ``recent`` holds ``(positive, decision_value)`` pairs for the voting
    horizon; the values are needed to seed the episode peak from the
    opening horizon's positives when an episode triggers.
    """

    window_index: int = 0
    in_episode: bool = False
    episode_start: int = 0
    episode_peak: float = float("-inf")
    recent: deque = field(default_factory=deque)


class StreamingDetector:
    """k-of-n debounced wrapper around a trained detector.

    Parameters
    ----------
    detector:
        A fitted :class:`SIFTDetector` (any version).
    votes_needed:
        ``k``: positives among the last ``n`` windows needed to *open* an
        episode.
    vote_window:
        ``n``: the voting horizon, in windows.
    quality_gate:
        Optional SQI gate.  Windows it judges unusable are *abstained*:
        counted in :attr:`abstained_indexes`, advancing the stream index,
        casting no vote (an episode neither opens, extends nor closes on
        evidence that never existed).  ``None`` (the default) keeps the
        historical classify-everything behaviour bit-identical.
    fallbacks:
        Fitted detectors for lighter tiers, keyed by version; consulted
        when the degradation controller steps down.  The primary
        ``detector`` serves its own version automatically.
    degradation:
        A quality-driven tier controller (duck-typed:
        ``observe(report) -> DetectorVersion`` plus ``active``), e.g.
        :class:`~repro.adaptive.degradation.DegradationController`.
        Requires ``quality_gate``.
    """

    def __init__(
        self,
        detector: SIFTDetector,
        votes_needed: int = 2,
        vote_window: int = 3,
        quality_gate: SignalQualityIndex | None = None,
        fallbacks: Mapping[DetectorVersion, SIFTDetector] | None = None,
        degradation: "DegradationController | None" = None,
    ) -> None:
        if vote_window < 1:
            raise ValueError("vote_window must be >= 1")
        if not 1 <= votes_needed <= vote_window:
            raise ValueError("need 1 <= votes_needed <= vote_window")
        if degradation is not None and quality_gate is None:
            raise ValueError("degradation requires a quality_gate")
        self.detector = detector
        self.votes_needed = int(votes_needed)
        self.vote_window = int(vote_window)
        self.quality_gate = quality_gate
        self.fallbacks = dict(fallbacks) if fallbacks else {}
        self.degradation = degradation
        self.state = StreamingState()
        self.episodes: list[AttackEpisode] = []
        self.abstained_indexes: list[int] = []

    @property
    def window_s(self) -> float:
        return self.detector.window_s

    @property
    def abstain_count(self) -> int:
        return len(self.abstained_indexes)

    @property
    def abstain_rate(self) -> float:
        """Fraction of observed windows withheld by the quality gate."""
        if self.state.window_index == 0:
            return 0.0
        return len(self.abstained_indexes) / self.state.window_index

    def _time_of(self, index: int) -> float:
        return index * self.window_s

    def _active_detector(self) -> SIFTDetector:
        """The detector for the tier currently in force."""
        if self.degradation is None:
            return self.detector
        version = self.degradation.active
        if version is self.detector.version:
            return self.detector
        try:
            return self.fallbacks[version]
        except KeyError:
            raise KeyError(
                f"degradation selected {version.value!r} but no fitted "
                "fallback detector was provided for that tier"
            ) from None

    def _abstain(self) -> None:
        """Record an abstained window: it advances time, casts no vote."""
        self.abstained_indexes.append(self.state.window_index)
        self.state.window_index += 1

    def advance_value(self, value: float) -> AttackEpisode | None:
        """Feed one *externally computed* decision value to the debouncer.

        The ingestion gateway scores windows from many wearers in one
        cross-session micro-batch (:meth:`SIFTDetector.decision_values`)
        and feeds each session's scores back in arrival order.  Because
        the batched scores are bit-identical to the per-window
        :meth:`~repro.core.detector.SIFTDetector.decision_value`, the
        episodes produced here equal a :meth:`process_window` run --
        quality gating and tier selection are the caller's job (they
        happened before the value was computed).
        """
        return self._advance(float(value))

    def abstain_window(self) -> None:
        """Record an externally gated abstain: time advances, no vote.

        The interleaved-session counterpart of the gate branch in
        :meth:`process_window`, for callers that assess quality
        themselves before deciding whether a window gets scored.
        """
        self._abstain()

    def process_window(self, window: SignalWindow) -> AttackEpisode | None:
        """Feed one window; returns the episode if one just *closed*."""
        if self.quality_gate is not None:
            report = self.quality_gate.assess(window)
            if self.degradation is not None:
                self.degradation.observe(report)
            if not report.usable:
                self._abstain()
                return None
        return self._advance(self._active_detector().decision_value(window))

    def process_stream(
        self,
        stream,
        chunk_size: int | None = None,
        flush: bool = False,
    ) -> list[AttackEpisode]:
        """Feed a whole stream through the debouncer in bounded memory.

        Window scores come from
        :meth:`SIFTDetector.iter_decision_values`, which scores
        ``chunk_size`` windows at a time through the batch path, so the
        episodes are identical to feeding each window through
        :meth:`process_window` -- only faster, and with peak memory
        bounded by the chunk size rather than the stream length.

        Returns the episodes that *closed* during this stream.  By
        default an episode still open at the end stays open (the stream
        may continue); pass ``flush=True`` when the stream is finite to
        also close and return the trailing open episode -- callers
        historically forgot the matching :meth:`finish` call and silently
        dropped attacks still in progress at end-of-stream.
        """
        closed: list[AttackEpisode] = []
        if self.quality_gate is not None:
            # The gated path is inherently per-window: each window must be
            # assessed (and may switch tiers) before it can be scored.
            for window in stream:
                episode = self.process_window(window)
                if episode is not None:
                    closed.append(episode)
        else:
            for values in self.detector.iter_decision_values(stream, chunk_size):
                for value in values:
                    episode = self._advance(float(value))
                    if episode is not None:
                        closed.append(episode)
        if flush:
            episode = self.finish()
            if episode is not None:
                closed.append(episode)
        return closed

    def _advance(self, value: float) -> AttackEpisode | None:
        """Advance the debouncer by one window's decision value."""
        state = self.state
        positive = value >= 0.0
        state.recent.append((positive, value))
        if len(state.recent) > self.vote_window:
            state.recent.popleft()

        closed: AttackEpisode | None = None
        votes = sum(vote for vote, _ in state.recent)
        if not state.in_episode and votes >= self.votes_needed:
            state.in_episode = True
            # The episode starts at the earliest positive in the horizon,
            # and its peak is seeded from *all* positives in the horizon
            # (an earlier positive may outscore the triggering window).
            offset = next(
                i for i, (vote, _) in enumerate(state.recent) if vote
            )
            state.episode_start = state.window_index - (
                len(state.recent) - 1 - offset
            )
            state.episode_peak = max(
                v for vote, v in state.recent if vote
            )
        elif state.in_episode:
            if votes == 0:
                # The current window sits *outside* the episode
                # (end_index = window_index - 1), so its value must not
                # contribute to the episode peak.
                closed = self._close_episode(end_index=state.window_index - 1)
            else:
                state.episode_peak = max(state.episode_peak, value)

        state.window_index += 1
        return closed

    def _close_episode(self, end_index: int) -> AttackEpisode:
        state = self.state
        episode = AttackEpisode(
            start_index=state.episode_start,
            end_index=max(end_index, state.episode_start),
            start_time_s=self._time_of(state.episode_start),
            end_time_s=self._time_of(max(end_index, state.episode_start) + 1),
            peak_decision_value=state.episode_peak,
        )
        self.episodes.append(episode)
        state.in_episode = False
        state.episode_peak = float("-inf")
        return episode

    def finish(self) -> AttackEpisode | None:
        """Close any open episode at end of stream; returns it if any."""
        if not self.state.in_episode:
            return None
        return self._close_episode(end_index=self.state.window_index - 1)

    def under_attack(self) -> bool:
        """Is an episode currently open?"""
        return self.state.in_episode

    # -- snapshot/restore (gateway session persistence) -----------------

    def export_state(self) -> dict:
        """JSON-safe dump of the debouncer's mutable state.

        Everything :meth:`restore_state` needs to make a *fresh*
        detector continue the stream bit-identically: the voting
        horizon, the open-episode bookkeeping, the closed episodes and
        the abstain history.  ``episode_peak``'s ``-inf`` rest value is
        encoded as ``None`` (JSON has no infinities).
        """
        state = self.state
        return {
            "window_index": int(state.window_index),
            "in_episode": bool(state.in_episode),
            "episode_start": int(state.episode_start),
            "episode_peak": (
                None
                if state.episode_peak == float("-inf")
                else float(state.episode_peak)
            ),
            "recent": [[bool(vote), float(value)] for vote, value in state.recent],
            "episodes": [
                {
                    "start_index": e.start_index,
                    "end_index": e.end_index,
                    "start_time_s": e.start_time_s,
                    "end_time_s": e.end_time_s,
                    "peak_decision_value": e.peak_decision_value,
                }
                for e in self.episodes
            ],
            "abstained_indexes": [int(i) for i in self.abstained_indexes],
        }

    def restore_state(self, exported: dict) -> None:
        """Resume from an :meth:`export_state` dump (round-trip exact)."""
        self.state = StreamingState(
            window_index=int(exported["window_index"]),
            in_episode=bool(exported["in_episode"]),
            episode_start=int(exported["episode_start"]),
            episode_peak=(
                float("-inf")
                if exported["episode_peak"] is None
                else float(exported["episode_peak"])
            ),
            recent=deque(
                (bool(vote), float(value)) for vote, value in exported["recent"]
            ),
        )
        self.episodes = [
            AttackEpisode(
                start_index=int(e["start_index"]),
                end_index=int(e["end_index"]),
                start_time_s=float(e["start_time_s"]),
                end_time_s=float(e["end_time_s"]),
                peak_decision_value=float(e["peak_decision_value"]),
            )
            for e in exported["episodes"]
        ]
        self.abstained_indexes = [int(i) for i in exported["abstained_indexes"]]

    def reset(self) -> None:
        """Clear state and history (e.g. after re-synchronization)."""
        self.state = StreamingState()
        self.episodes = []
        self.abstained_indexes = []
        if self.degradation is not None:
            self.degradation.reset()
