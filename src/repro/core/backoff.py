"""Jittered exponential backoff, shared by every retry loop in the repo.

Pure exponential backoff has a thundering-herd failure mode: when several
workers fail on the *same* cause at the same time (a crashed scorer
subprocess, a dead pool), they all sleep exactly ``base * 2**(k-1)``
seconds and then retry in lockstep, re-creating the very contention that
failed them.  The classic fix (AWS architecture blog, "Exponential
Backoff and Jitter") subtracts a random fraction of the delay so
retries decorrelate.

:class:`JitteredBackoff` packages the policy once so the hardened
:class:`~repro.experiments.runner.CohortRunner` and the gateway's
:class:`~repro.gateway.supervisor.SupervisedScoringBackend` sleep by the
same rules.  The jitter stream is an explicitly seeded
``numpy.random.Generator`` -- reproducibility is the repo's contract
(DET001), so even retry timing is replayable: two runs constructed with
the same seed observe identical delay sequences.

With ``jitter=0.0`` the helper degrades to the exact historical
deterministic schedule ``min(cap, base * 2**(attempt-1))``, which the
runner's regression tests pin.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

__all__ = ["JitteredBackoff"]

#: Default fraction of each delay eligible to be jittered away.  0.5
#: ("equal jitter") keeps at least half the exponential delay -- enough
#: decorrelation to break retry lockstep while preserving the backoff
#: envelope that protects the failing resource.
DEFAULT_JITTER = 0.5

#: Default cap on any single sleep, matching the runner's historical 30 s.
DEFAULT_CAP_S = 30.0


class JitteredBackoff:
    """Capped exponential backoff with seeded, replayable jitter.

    Parameters
    ----------
    base_s:
        Delay before the first retry (attempt 1); each further attempt
        doubles it.  ``0`` disables sleeping entirely.
    cap_s:
        Upper bound on any single delay, applied *before* jitter so the
        jittered delay never exceeds the cap either.
    jitter:
        Fraction of each delay that may be randomly subtracted: the
        delay for attempt ``k`` is uniform in
        ``[raw * (1 - jitter), raw]`` where
        ``raw = min(cap_s, base_s * 2**(k-1))``.  ``0`` reproduces the
        deterministic schedule exactly.
    seed:
        Seed for the jitter stream.  Identical seeds replay identical
        delay sequences -- chaos schedules and backoff regression tests
        rely on this.
    sleep:
        The sleeping primitive (monkeypatch point for tests; defaults to
        :func:`time.sleep`).
    """

    def __init__(
        self,
        base_s: float,
        cap_s: float = DEFAULT_CAP_S,
        jitter: float = DEFAULT_JITTER,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if base_s < 0:
            raise ValueError("base_s must be >= 0")
        if cap_s <= 0:
            raise ValueError("cap_s must be positive")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._sleep = sleep
        self._rng = np.random.default_rng(self.seed)

    def delay(self, attempt: int) -> float:
        """The (possibly jittered) delay before retry number ``attempt``.

        Consumes one draw from the jitter stream per call when jitter is
        enabled, so the sequence of delays -- not just each marginal
        distribution -- is reproducible from the seed.
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        if self.base_s <= 0:
            return 0.0
        raw = min(self.cap_s, self.base_s * 2 ** (attempt - 1))
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * float(self._rng.random()))

    def sleep(self, attempt: int) -> float:
        """Sleep for :meth:`delay`'s duration; returns the seconds slept."""
        delay = self.delay(attempt)
        if delay > 0:
            self._sleep(delay)
        return delay

    def reset(self) -> None:
        """Rewind the jitter stream to its seed (fresh retry cycle)."""
        self._rng = np.random.default_rng(self.seed)
