"""Model persistence.

Trained detectors are deployed artifacts: the paper trains offline and
flashes the result onto the device.  This module serializes a fitted
:class:`~repro.core.detector.SIFTDetector` (scaler + linear SVM + version
configuration) to a JSON document -- human-auditable, diff-able, and free
of arbitrary-code-execution pitfalls -- and back.

Only linear-kernel detectors are serializable: the deployed model is the
primal weight vector, exactly what the firmware carries.  RBF models are a
research-side ablation and never ship to the device.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.detector import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.ml.kernels import LinearKernel

__all__ = ["detector_from_json", "detector_to_json", "load_detector", "save_detector"]

_FORMAT = "repro.sift-detector"
_FORMAT_VERSION = 1


def detector_to_json(detector: SIFTDetector) -> str:
    """Serialize a fitted linear detector to a JSON string."""
    if not detector._fitted:
        raise ValueError("cannot serialize an unfitted detector")
    if not isinstance(detector.svc.kernel, LinearKernel):
        raise ValueError(
            "only linear-kernel detectors serialize (the deployable form)"
        )
    document = {
        "format": _FORMAT,
        "format_version": _FORMAT_VERSION,
        "detector": {
            "version": detector.version.value,
            "window_s": detector.window_s,
            "grid_n": detector.grid_n,
            "subject_id": detector.subject_id,
            # Training configuration that must survive the round trip:
            # without these, a reloaded detector would silently refit with
            # seed 0 / default gamma instead of its original settings.
            "kernel": detector.kernel_name,
            "gamma": detector.gamma,
            "seed": detector.svc.seed,
        },
        "scaler": {
            "mean": detector.scaler.mean_.tolist(),
            "scale": detector.scaler.scale_.tolist(),
        },
        "svm": {
            "coef": detector.svc.coef_.tolist(),
            # intercept_ may be a NumPy scalar (e.g. after assigning the
            # result of a NumPy reduction); json.dumps rejects those.
            "intercept": float(detector.svc.intercept_),
            "support_vectors": detector.svc.support_vectors_.tolist(),
            "dual_coef": detector.svc.dual_coef_.tolist(),
            "C": detector.svc.C,
        },
    }
    return json.dumps(document, indent=2)


def detector_from_json(text: str, platform: str = "numpy") -> SIFTDetector:
    """Reconstruct a fitted detector from :func:`detector_to_json` output.

    ``platform`` selects the scoring path of the reconstructed detector
    (``"numpy"`` or ``"native"``); it is a runtime choice, not model
    state, so it is a parameter rather than part of the document.

    The ``kernel``/``gamma``/``seed`` keys are optional (documents written
    before format additions lack them); defaults match the constructor so
    old documents load exactly as before.
    """
    document = json.loads(text)
    if document.get("format") != _FORMAT:
        raise ValueError(
            f"not a serialized SIFT detector (format={document.get('format')!r})"
        )
    if document.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {document.get('format_version')!r}"
        )
    meta = document["detector"]
    detector = SIFTDetector(
        version=DetectorVersion.from_name(meta["version"]),
        window_s=float(meta["window_s"]),
        grid_n=int(meta["grid_n"]),
        C=float(document["svm"]["C"]),
        kernel=meta.get("kernel", "linear"),
        gamma=float(meta.get("gamma", 0.5)),
        seed=int(meta.get("seed", 0)),
        platform=platform,
    )
    detector.scaler.mean_ = np.asarray(document["scaler"]["mean"], dtype=np.float64)
    detector.scaler.scale_ = np.asarray(document["scaler"]["scale"], dtype=np.float64)

    svm = document["svm"]
    detector.svc.coef_ = np.asarray(svm["coef"], dtype=np.float64)
    detector.svc.intercept_ = float(svm["intercept"])
    detector.svc.support_vectors_ = np.asarray(
        svm["support_vectors"], dtype=np.float64
    )
    detector.svc.dual_coef_ = np.asarray(svm["dual_coef"], dtype=np.float64)

    expected = detector.extractor.n_features
    for name, array in (
        ("scaler mean", detector.scaler.mean_),
        ("scaler scale", detector.scaler.scale_),
        ("svm coef", detector.svc.coef_),
    ):
        if array.shape != (expected,):
            raise ValueError(
                f"corrupt document: {name} has shape {array.shape}, "
                f"expected ({expected},) for the {meta['version']} version"
            )
    detector.subject_id = meta.get("subject_id")
    detector._fitted = True
    return detector


def save_detector(detector: SIFTDetector, path: str | Path) -> None:
    """Write a fitted detector to a JSON file."""
    Path(path).write_text(detector_to_json(detector))


def load_detector(path: str | Path, platform: str = "numpy") -> SIFTDetector:
    """Load a detector saved by :func:`save_detector`."""
    return detector_from_json(Path(path).read_text(), platform=platform)
