"""The SIFT detector: per-user train / classify / deploy API.

One :class:`SIFTDetector` instance is one *version* of the detector trained
for one wearer.  ``fit`` runs the paper's offline training step;
``classify_window`` is the reference ("MATLAB") detection path; ``deploy``
exports the fixed-point model that the simulated Amulet app executes.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.attacks.scenario import LabeledStream
from repro.core.alerts import Alert, AlertLog
from repro.core.features.base import FeatureExtractor
from repro.core.features.batched import iter_window_chunks
from repro.core.training import TrainingSet, build_training_set
from repro.core.versions import DetectorVersion, make_extractor
from repro.ml.kernels import make_kernel
from repro.ml.metrics import DetectionReport, score_predictions
from repro.ml.model_codegen import FixedPointLinearModel, export_fixed_point
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC
from repro.signals.dataset import Record, SignalWindow

if TYPE_CHECKING:
    from repro.native.backend import NativeScorer

__all__ = ["DEFAULT_CHUNK_SIZE", "PLATFORMS", "SIFTDetector"]

#: Supported scoring platforms: the NumPy reference path, and the
#: generated-C hot path (bit-identical, optional, falls back cleanly).
PLATFORMS = ("numpy", "native")

#: Windows scored per chunk by the bounded-memory stream entry points.
#: 256 three-second windows are ~12.8 minutes of signal; the transient
#: feature-pipeline tensors for a chunk stay in the ten-megabyte range
#: regardless of how long the input stream is.
DEFAULT_CHUNK_SIZE = 256


class SIFTDetector:
    """A trainable, deployable SIFT detector for one wearer.

    Parameters
    ----------
    version:
        Which of the three builds to use; accepts a
        :class:`~repro.core.versions.DetectorVersion` or its string name.
    window_s:
        Detection window size ``w``; the paper uses 3 seconds.
    grid_n:
        Occupancy-grid side length for the matrix features (paper: 50).
    C:
        SVM soft-margin penalty.
    kernel:
        ``"linear"`` (the paper's deployed choice) or ``"rbf"``.
    gamma:
        RBF kernel width; ignored by the linear kernel but always threaded
        through so an ``"rbf"`` detector never silently runs on the
        default.
    seed:
        Seed for the SMO solver's internal randomness.
    platform:
        ``"numpy"`` (the reference path) or ``"native"`` -- score streams
        through the generated-C hot path (:mod:`repro.native`).  Native
        scoring is bit-identical to the NumPy path and falls back to it
        (with a ``RuntimeWarning``) when the host cannot build or validate
        the extension.
    """

    def __init__(
        self,
        version: DetectorVersion | str = DetectorVersion.ORIGINAL,
        window_s: float = 3.0,
        grid_n: int = 50,
        C: float = 1.0,
        kernel: str = "linear",
        gamma: float = 0.5,
        seed: int = 0,
        platform: str = "numpy",
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if platform not in PLATFORMS:
            raise ValueError(f"platform must be one of {PLATFORMS}, got {platform!r}")
        if isinstance(version, str):
            version = DetectorVersion.from_name(version)
        self.version = version
        self.window_s = float(window_s)
        self.grid_n = int(grid_n)
        self.kernel_name = kernel
        self.gamma = float(gamma)
        self.platform = platform
        self.extractor: FeatureExtractor = make_extractor(version, grid_n=grid_n)
        self.scaler = StandardScaler()
        self.svc = SVC(C=C, kernel=make_kernel(kernel, gamma=gamma), seed=seed)
        self.subject_id: str | None = None
        self._fitted = False
        self._native_scorer: "NativeScorer | None" = None
        self._native_error: str | None = None

    # ------------------------------------------------------------------
    # Training (offline; "need not be done on amulet platform itself")
    # ------------------------------------------------------------------

    def fit(
        self,
        training_record: Record,
        donor_records: list[Record],
        stride_s: float | None = None,
        rng: np.random.Generator | None = None,
        attacks: list | None = None,
    ) -> "SIFTDetector":
        """Train the per-user model from a training recording and donors.

        ``attacks`` widens the positive class beyond the paper's default
        cross-subject replacement (see
        :func:`~repro.core.training.build_training_set`).
        """
        training_set = build_training_set(
            self.extractor,
            training_record,
            donor_records,
            window_s=self.window_s,
            stride_s=stride_s,
            rng=rng,
            attacks=attacks,
        )
        return self.fit_training_set(training_set, subject_id=training_record.subject_id)

    def fit_training_set(
        self, training_set: TrainingSet, subject_id: str | None = None
    ) -> "SIFTDetector":
        """Train directly from a prepared :class:`TrainingSet`."""
        if training_set.X.shape[1] != self.extractor.n_features:
            raise ValueError(
                f"training set has {training_set.X.shape[1]} features but the "
                f"{self.version.value} extractor produces {self.extractor.n_features}"
            )
        X = self.scaler.fit_transform(training_set.X)
        self.svc.fit(X, training_set.y)
        self.subject_id = subject_id
        self._fitted = True
        # The native scorer bakes the model constants into generated C, so
        # refitting invalidates it (and clears any stale failure reason).
        self._native_scorer = None
        self._native_error = None
        return self

    # ------------------------------------------------------------------
    # Native platform plumbing
    # ------------------------------------------------------------------

    @property
    def native_active(self) -> bool:
        """Whether scoring currently runs through the generated-C path."""
        return self._native() is not None

    @property
    def native_error(self) -> str | None:
        """Why the native path is inactive (``None`` when active/unused)."""
        return self._native_error

    def _native(self) -> "NativeScorer | None":
        """The lazily-built native scorer, or ``None`` (numpy fallback)."""
        if self.platform != "native" or not self._fitted:
            return None
        if self._native_scorer is None and self._native_error is None:
            from repro.native.backend import NativeScorer, NativeUnavailableError

            try:
                if self.svc.coef_ is None:
                    raise NativeUnavailableError(
                        "native scoring requires a linear kernel "
                        "(no primal weights to generate code from)"
                    )
                self._native_scorer = NativeScorer(
                    self.version,
                    self.grid_n,
                    self.svc.coef_,
                    float(self.svc.intercept_),
                    self.scaler.mean_,
                    self.scaler.scale_,
                    window_s=self.window_s,
                    fallback=self._numpy_decision_values,
                )
            except NativeUnavailableError as exc:
                self._native_error = str(exc)
                warnings.warn(
                    f"native scoring backend unavailable ({exc}); "
                    "falling back to the numpy path",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return self._native_scorer

    def __getstate__(self) -> dict:
        """Drop the compiled-library handle; it cannot cross processes.

        A supervised scoring child (or any unpickling consumer) rebuilds
        the native scorer lazily on first use, hitting the on-disk
        artifact cache rather than recompiling.
        """
        state = self.__dict__.copy()
        state["_native_scorer"] = None
        state["_native_error"] = None
        return state

    # ------------------------------------------------------------------
    # Detection (reference float path)
    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("SIFTDetector is not fitted; call fit() first")

    def extract_features(self, window: SignalWindow) -> np.ndarray:
        """Raw (unstandardized) feature vector of one window."""
        return self.extractor.extract_window(window)

    def decision_value(self, window: SignalWindow) -> float:
        """Signed score; non-negative means "altered"."""
        self._require_fitted()
        features = self.scaler.transform(self.extract_features(window))
        return float(self.svc.decision_function(features)[0])

    def classify_window(self, window: SignalWindow) -> bool:
        """``True`` when the window is classified as altered."""
        return self.decision_value(window) >= 0.0

    def decision_values(self, stream) -> np.ndarray:
        """Signed scores for every window of a stream, in one NumPy pass.

        ``stream`` is a :class:`LabeledStream` or any sequence of windows.
        Features are extracted via the extractor's batch path, then the
        whole matrix is standardized and scored at once.  Because both the
        extractors and :meth:`SVC.decision_function` are batch-size
        invariant, each score equals the per-window
        :meth:`decision_value` bit-for-bit.

        Peak memory is O(stream); long or unbounded streams should use
        :meth:`iter_decision_values` instead.

        With ``platform="native"`` the same scores come from the
        generated-C hot path -- the parity contract makes the two
        platforms interchangeable mid-stream.
        """
        self._require_fitted()
        scorer = self._native()
        if scorer is not None:
            return scorer.decision_values(list(getattr(stream, "windows", stream)))
        return self._numpy_decision_values(stream)

    def _numpy_decision_values(self, stream) -> np.ndarray:
        """The NumPy reference scoring path (also the native fallback)."""
        features = self.extractor.extract_stream(stream)
        if features.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        return self.svc.decision_function(self.scaler.transform(features))

    def iter_decision_values(
        self, stream, chunk_size: int | None = None
    ) -> Iterator[np.ndarray]:
        """Signed scores for a stream, one fixed-size chunk at a time.

        Yields one float64 array of up to ``chunk_size`` scores per chunk
        (``None`` = :data:`DEFAULT_CHUNK_SIZE`).  Each chunk runs through
        the same batch extractor, standardization and einsum decision as
        :meth:`decision_values`, and both are batch-size invariant, so the
        concatenated chunks are **bit-identical** to the one-shot scores.
        The feature-pipeline intermediates (normalized coordinates,
        occupancy tensors, feature matrix) only ever exist for one chunk,
        so peak memory is O(chunk_size) instead of O(stream) -- the same
        discipline that lets the paper's detector score 3-second windows
        in 2 KB of SRAM.

        ``stream`` may be a :class:`LabeledStream`, a sequence of windows
        or a lazy iterator of windows (which is never materialized in
        full).  Empty streams yield nothing.
        """
        self._require_fitted()
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        scorer = self._native()
        for chunk in iter_window_chunks(stream, chunk_size):
            if scorer is not None:
                yield scorer.decision_values(chunk)
            else:
                yield self._numpy_decision_values(chunk)

    def classify_stream(self, stream, chunk_size: int | None = None) -> np.ndarray:
        """Boolean predictions for every window (``True`` = altered).

        Scores ride the chunked path (:meth:`iter_decision_values`), so
        transient memory is bounded by ``chunk_size`` windows; the result
        equals ``decision_values(stream) >= 0.0`` bit-for-bit.
        """
        chunks = [
            values >= 0.0
            for values in self.iter_decision_values(stream, chunk_size)
        ]
        if not chunks:
            return np.zeros(0, dtype=bool)
        return np.concatenate(chunks)

    def inspect_stream(
        self, stream: LabeledStream, chunk_size: int | None = None
    ) -> tuple[np.ndarray, AlertLog]:
        """Classify every window of a stream, collecting alerts.

        Scoring is chunked (bounded memory); alert indexes and decision
        values match the one-shot path exactly.
        """
        log = AlertLog()
        prediction_chunks: list[np.ndarray] = []
        offset = 0
        for values in self.iter_decision_values(stream, chunk_size):
            predictions = values >= 0.0
            prediction_chunks.append(predictions)
            for i in np.flatnonzero(predictions):
                index = offset + int(i)
                log.raise_alert(
                    Alert(
                        window_index=index,
                        time_s=index * self.window_s,
                        subject_id=stream.subject_id,
                        version=self.version.value,
                        decision_value=float(values[i]),
                    )
                )
            offset += values.size
        if not prediction_chunks:
            return np.zeros(0, dtype=bool), log
        return np.concatenate(prediction_chunks), log

    def evaluate(
        self, stream: LabeledStream, chunk_size: int | None = None
    ) -> DetectionReport:
        """Score this detector against a labelled stream (chunked)."""
        return score_predictions(
            self.classify_stream(stream, chunk_size), stream.labels
        )

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the fitted model, in bytes.

        Counts the NumPy payload (support vectors, dual/primal
        coefficients, scaler statistics); used by the experiment cache's
        LRU budget to price cached detectors.
        """
        arrays = (
            self.svc.support_vectors_,
            self.svc.dual_coef_,
            self.svc.coef_,
            self.scaler.mean_,
            self.scaler.scale_,
        )
        return int(sum(a.nbytes for a in arrays if a is not None))

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self, frac_bits: int = 14) -> FixedPointLinearModel:
        """Export the trained model for the on-device MLClassifier state."""
        self._require_fitted()
        return export_fixed_point(self.svc, self.scaler, frac_bits=frac_bits)
