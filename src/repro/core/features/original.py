"""The Original feature extractor: the full 8 features of Table I."""

from __future__ import annotations

import numpy as np

from repro.core.features.base import FeatureExtractor
from repro.core.features.geometric import (
    average_paired_distance,
    average_peak_angle,
    average_peak_distance,
)
from repro.core.features.matrix import (
    auc_trapezoid,
    column_averages,
    spatial_filling_index,
)
from repro.core.portrait import Portrait

__all__ = ["OriginalFeatureExtractor"]


class OriginalFeatureExtractor(FeatureExtractor):
    """Full implementation: std-dev, trapezoidal AUC, angles, distances.

    This is the detector the paper calls the *Original version*; it is the
    only variant that needs the C math library on the device.
    """

    requires_libm = True

    _NAMES = (
        "sfi",
        "col_avg_std",
        "col_avg_auc",
        "r_angle_avg",
        "systolic_angle_avg",
        "r_origin_dist_avg",
        "systolic_origin_dist_avg",
        "r_systolic_dist_avg",
    )

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._NAMES

    def extract(self, portrait: Portrait) -> np.ndarray:
        matrix = portrait.occupancy_matrix(self.grid_n)
        col_avg = column_averages(matrix)
        r_points = portrait.r_peak_points()
        s_points = portrait.systolic_peak_points()
        paired_r, paired_s = portrait.paired_peak_points()
        return np.array(
            [
                spatial_filling_index(matrix),
                float(np.std(col_avg)),
                auc_trapezoid(col_avg),
                average_peak_angle(r_points),
                average_peak_angle(s_points),
                average_peak_distance(r_points),
                average_peak_distance(s_points),
                average_paired_distance(paired_r, paired_s),
            ]
        )
