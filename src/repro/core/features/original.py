"""The Original feature extractor: the full 8 features of Table I."""

from __future__ import annotations

import numpy as np

from repro.core.features.base import FeatureExtractor
from repro.core.features.batched import (
    build_peak_geometry,
    build_portrait_batch,
    spatial_filling_indices,
)
from repro.core.features.geometric import (
    average_paired_distance,
    average_peak_angle,
    average_peak_distance,
)
from repro.core.features.matrix import (
    auc_trapezoid,
    column_averages,
    spatial_filling_index,
)
from repro.core.portrait import Portrait
from repro.signals.dataset import SignalWindow

__all__ = ["OriginalFeatureExtractor"]


class OriginalFeatureExtractor(FeatureExtractor):
    """Full implementation: std-dev, trapezoidal AUC, angles, distances.

    This is the detector the paper calls the *Original version*; it is the
    only variant that needs the C math library on the device.
    """

    requires_libm = True

    _NAMES = (
        "sfi",
        "col_avg_std",
        "col_avg_auc",
        "r_angle_avg",
        "systolic_angle_avg",
        "r_origin_dist_avg",
        "systolic_origin_dist_avg",
        "r_systolic_dist_avg",
    )

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._NAMES

    def extract(self, portrait: Portrait) -> np.ndarray:
        matrix = portrait.occupancy_matrix(self.grid_n)
        col_avg = column_averages(matrix)
        r_points = portrait.r_peak_points()
        s_points = portrait.systolic_peak_points()
        paired_r, paired_s = portrait.paired_peak_points()
        return np.array(
            [
                spatial_filling_index(matrix),
                float(np.std(col_avg)),
                auc_trapezoid(col_avg),
                average_peak_angle(r_points),
                average_peak_angle(s_points),
                average_peak_distance(r_points),
                average_peak_distance(s_points),
                average_paired_distance(paired_r, paired_s),
            ]
        )

    def _extract_batch(self, windows: list[SignalWindow]) -> np.ndarray:
        batch = build_portrait_batch(windows)
        if batch is None:  # ragged window lengths: per-window fallback
            return super()._extract_batch(windows)
        matrices = np.asarray(batch.occupancy_matrices(self.grid_n), dtype=np.float64)
        # mean over axis 1 (rows) is column_averages() applied per window;
        # all three matrix features reduce the stacked tensor in one pass.
        col_avg = matrices.mean(axis=1)
        out = np.empty((len(windows), self.n_features))
        out[:, 0] = spatial_filling_indices(matrices)
        out[:, 1] = col_avg.std(axis=1)
        out[:, 2] = np.trapezoid(col_avg, axis=-1)
        geometry = build_peak_geometry(batch)
        out[:, 3], out[:, 4] = geometry.angle_means()
        out[:, 5], out[:, 6] = geometry.distance_means()
        out[:, 7] = geometry.paired_distance_means()
        return out
