"""Reduced features: geometric-only, the lightest detector version.

"The *reduced* feature extraction algorithm only uses the geometric
features from the simplified case."  Dropping the matrix features means the
50x50 occupancy grid is never built -- which is exactly where the Reduced
build's ~50 % FRAM saving and ~2x battery lifetime in Table III come from.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.base import FeatureExtractor
from repro.core.features.batched import build_peak_geometry, build_portrait_batch
from repro.core.features.simplified import (
    SLOPE_EPSILON,
    average_peak_slope,
    average_squared_paired_distance,
    average_squared_peak_distance,
)
from repro.core.portrait import Portrait
from repro.signals.dataset import SignalWindow

__all__ = ["ReducedFeatureExtractor"]


class ReducedFeatureExtractor(FeatureExtractor):
    """The paper's *Reduced version*: 5 simplified geometric features."""

    requires_libm = False

    _NAMES = (
        "r_slope_avg",
        "systolic_slope_avg",
        "r_origin_sqdist_avg",
        "systolic_origin_sqdist_avg",
        "r_systolic_sqdist_avg",
    )

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._NAMES

    def extract(self, portrait: Portrait) -> np.ndarray:
        r_points = portrait.r_peak_points()
        s_points = portrait.systolic_peak_points()
        paired_r, paired_s = portrait.paired_peak_points()
        return np.array(
            [
                average_peak_slope(r_points),
                average_peak_slope(s_points),
                average_squared_peak_distance(r_points),
                average_squared_peak_distance(s_points),
                average_squared_paired_distance(paired_r, paired_s),
            ]
        )

    def _extract_batch(self, windows: list[SignalWindow]) -> np.ndarray:
        # No matrix features, but the batch still vectorizes the min-max
        # normalization (the bulk of portrait construction) across windows.
        batch = build_portrait_batch(windows)
        if batch is None:  # ragged window lengths: per-window fallback
            return super()._extract_batch(windows)
        out = np.empty((len(windows), self.n_features))
        geometry = build_peak_geometry(batch)
        out[:, 0], out[:, 1] = geometry.slope_means(SLOPE_EPSILON)
        out[:, 2], out[:, 3] = geometry.squared_distance_means()
        out[:, 4] = geometry.paired_squared_distance_means()
        return out
