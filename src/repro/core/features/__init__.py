"""Feature extraction over portraits.

Three variants, matching the paper's three detector versions:

========== ================================ ======================= =====
Variant    Matrix features                  Geometric features      Count
========== ================================ ======================= =====
Original   SFI, std of column averages,     angles (atan), and        8
           trapezoidal AUC                  Euclidean distances
Simplified SFI, *variance* of column        slopes (y/x) and          8
           averages, composite-sum AUC      *squared* distances
Reduced    (none)                           simplified geometric      5
========== ================================ ======================= =====

The Simplified and Reduced variants avoid every libm call (``sqrt``,
``atan``); that property is machine-checked by the Amulet simulator's
restricted execution environment.
"""

from repro.core.features.base import FeatureExtractor
from repro.core.features.geometric import (
    average_peak_angle,
    average_peak_distance,
    average_paired_distance,
)
from repro.core.features.matrix import (
    auc_composite,
    auc_trapezoid,
    column_averages,
    spatial_filling_index,
)
from repro.core.features.original import OriginalFeatureExtractor
from repro.core.features.reduced import ReducedFeatureExtractor
from repro.core.features.simplified import (
    SimplifiedFeatureExtractor,
    average_peak_slope,
    average_squared_paired_distance,
    average_squared_peak_distance,
)

__all__ = [
    "FeatureExtractor",
    "OriginalFeatureExtractor",
    "ReducedFeatureExtractor",
    "SimplifiedFeatureExtractor",
    "auc_composite",
    "auc_trapezoid",
    "average_paired_distance",
    "average_peak_angle",
    "average_peak_distance",
    "average_peak_slope",
    "average_squared_paired_distance",
    "average_squared_peak_distance",
    "column_averages",
    "spatial_filling_index",
]
