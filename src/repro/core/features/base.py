"""Feature extractor interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.core.portrait import Portrait, build_portrait
from repro.signals.dataset import SignalWindow

__all__ = ["FeatureExtractor"]


class FeatureExtractor(abc.ABC):
    """Maps a portrait to a fixed-length feature vector.

    Parameters
    ----------
    grid_n:
        Side length of the occupancy grid for the matrix features; the
        paper uses ``n = 50``.  Extractors without matrix features ignore
        it but accept it for interface uniformity.
    """

    #: Whether the reference implementation needs libm (sqrt/atan/exp).
    #: The Amulet's Simplified and Reduced builds must report ``False``.
    requires_libm: bool = True

    def __init__(self, grid_n: int = 50) -> None:
        if grid_n < 2:
            raise ValueError("grid_n must be >= 2")
        self.grid_n = int(grid_n)

    @property
    @abc.abstractmethod
    def feature_names(self) -> tuple[str, ...]:
        """Ordered names of the produced features."""

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @abc.abstractmethod
    def extract(self, portrait: Portrait) -> np.ndarray:
        """Extract the feature vector from one portrait."""

    def extract_window(self, window: SignalWindow) -> np.ndarray:
        """Convenience: build the portrait and extract in one call."""
        return self.extract(build_portrait(window))

    def extract_stream(self, stream) -> np.ndarray:
        """Feature matrix for a whole stream: ``(n_windows, n_features)``.

        ``stream`` is anything with a ``windows`` attribute (e.g. a
        :class:`~repro.attacks.scenario.LabeledStream`) or a plain
        sequence of :class:`SignalWindow`.  Subclasses override
        :meth:`_extract_batch` to vectorize across windows; results are
        bit-identical to calling :meth:`extract_window` per window.
        """
        windows = list(getattr(stream, "windows", stream))
        if not windows:
            return np.empty((0, self.n_features))
        return self._extract_batch(windows)

    def _extract_batch(self, windows: list[SignalWindow]) -> np.ndarray:
        """Batch extraction hook; default is the per-window loop."""
        return np.vstack([self.extract_window(w) for w in windows])

    def extract_many(self, windows: list[SignalWindow]) -> np.ndarray:
        """Feature matrix, one row per window."""
        return self.extract_stream(windows)
