"""Feature extractor interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.core.portrait import Portrait, build_portrait
from repro.signals.dataset import SignalWindow

__all__ = ["FeatureExtractor"]


class FeatureExtractor(abc.ABC):
    """Maps a portrait to a fixed-length feature vector.

    Parameters
    ----------
    grid_n:
        Side length of the occupancy grid for the matrix features; the
        paper uses ``n = 50``.  Extractors without matrix features ignore
        it but accept it for interface uniformity.
    """

    #: Whether the reference implementation needs libm (sqrt/atan/exp).
    #: The Amulet's Simplified and Reduced builds must report ``False``.
    requires_libm: bool = True

    def __init__(self, grid_n: int = 50) -> None:
        if grid_n < 2:
            raise ValueError("grid_n must be >= 2")
        self.grid_n = int(grid_n)

    @property
    @abc.abstractmethod
    def feature_names(self) -> tuple[str, ...]:
        """Ordered names of the produced features."""

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @abc.abstractmethod
    def extract(self, portrait: Portrait) -> np.ndarray:
        """Extract the feature vector from one portrait."""

    def extract_window(self, window: SignalWindow) -> np.ndarray:
        """Convenience: build the portrait and extract in one call."""
        return self.extract(build_portrait(window))

    def extract_many(self, windows: list[SignalWindow]) -> np.ndarray:
        """Feature matrix, one row per window."""
        if not windows:
            return np.empty((0, self.n_features))
        return np.vstack([self.extract_window(w) for w in windows])
