"""Vectorized portrait construction for whole window streams.

The scalar detection path builds one :class:`~repro.core.portrait.Portrait`
per window and extracts features window by window -- dozens of small NumPy
calls per 3-second window.  This module amortizes the heavy per-window
stages across a whole stream at once:

* min-max normalization of every ECG/ABP window in two rowwise passes;
* all occupancy matrices in a single ``np.bincount`` scatter;
* the matrix-feature reductions (SFI, column-average statistics) as one
  axis-reduction over the stacked matrices.

Every batched operation is **bit-identical** to its scalar counterpart:
the elementwise arithmetic is the same float64 expression, and the axis
reductions reduce the same contiguous runs NumPy's scalar calls do.  The
equivalence is locked down by ``tests/core/test_batch_detection.py`` and
``tests/core/test_peak_geometry_batch.py``.

Peak geometry is ragged -- each window has its own R-peak and
systolic-peak count -- so it cannot stack into rectangular matrices
directly.  :class:`PeakGeometryBatch` pads instead: peak indices land in
``(n_windows, max_count)`` index matrices (padded positions point at
sample 0) with boolean validity masks, the geometric quantities are
computed elementwise on the padded matrices, and the per-window means
accumulate the masked values column by column -- the same left-to-right
order as :func:`~repro.core.features.geometric.sequential_mean`, which is
what keeps the padded path bit-identical to the scalar helpers at every
peak count (pairwise ``np.mean`` would re-associate at 8+ peaks).
Padding contributes exact zeros to non-negative partial sums, so it
never perturbs a mean.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.portrait import Portrait
from repro.signals.dataset import SignalWindow
from repro.signals.peaks import match_peaks

__all__ = [
    "PeakGeometryBatch",
    "PortraitBatch",
    "build_peak_geometry",
    "build_portrait_batch",
    "iter_window_chunks",
    "masked_sequential_row_means",
    "normalize_rows",
    "spatial_filling_indices",
    "stack_signals",
]


def iter_window_chunks(
    stream, chunk_size: int
) -> Iterator[list[SignalWindow]]:
    """Cut a stream into lists of at most ``chunk_size`` windows.

    ``stream`` is anything with a ``windows`` attribute (e.g. a
    :class:`~repro.attacks.scenario.LabeledStream`), a sequence of
    windows, or a lazy iterator.  Consumption is incremental: at most one
    chunk of windows is pulled from a lazy source at a time, so chunked
    scoring over a generator never materializes the whole stream.  An
    empty stream yields no chunks (not an empty list).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    windows = iter(getattr(stream, "windows", stream))
    while True:
        chunk = list(itertools.islice(windows, chunk_size))
        if not chunk:
            return
        yield chunk


def stack_signals(
    windows: list[SignalWindow],
) -> tuple[np.ndarray, np.ndarray] | None:
    """``(ecg, abp)`` as ``(n_windows, n_samples)`` matrices.

    Returns ``None`` when the windows have ragged lengths (the batch path
    then falls back to the per-window loop).
    """
    if not windows:
        return None
    length = windows[0].n_samples
    if any(w.n_samples != length for w in windows):
        return None
    ecg = np.stack([w.ecg for w in windows])
    abp = np.stack([w.abp for w in windows])
    return ecg, abp


def normalize_rows(signals: np.ndarray) -> np.ndarray:
    """Rowwise min-max normalization to [0, 1].

    Bit-identical to :func:`~repro.core.portrait.normalize_signal` applied
    per row: the same ``(signal - low) / (high - low)`` float64 arithmetic,
    with constant rows mapped to all 0.5.
    """
    signals = np.asarray(signals, dtype=np.float64)
    low = signals.min(axis=1, keepdims=True)
    high = signals.max(axis=1, keepdims=True)
    span = high - low
    flat = (high <= low).ravel()
    out = (signals - low) / np.where(span > 0.0, span, 1.0)
    if flat.any():
        out[flat] = 0.5
    return out


def spatial_filling_indices(matrices: np.ndarray) -> np.ndarray:
    """Batched :func:`~repro.core.features.matrix.spatial_filling_index`.

    ``matrices`` is the stacked float64 occupancy tensor ``(m, n, n)``;
    empty matrices yield 0.0, matching the scalar function.
    """
    matrices = np.asarray(matrices, dtype=np.float64)
    n = matrices.shape[1]
    totals = matrices.sum(axis=(1, 2))
    out = np.zeros(matrices.shape[0])
    occupied = totals > 0
    if occupied.any():
        p = matrices[occupied] / totals[occupied, None, None]
        out[occupied] = n**2 * np.sum(p**2, axis=(1, 2))
    return out


@dataclass(frozen=True)
class PortraitBatch:
    """Normalized portrait coordinates for a whole stream of windows.

    ``x``/``y`` hold every window's normalized ABP/ECG as rows;
    ``portraits`` are per-window :class:`Portrait` views into those rows
    (peak geometry is ragged, so it stays per window).
    """

    x: np.ndarray  # (n_windows, n_samples) normalized ABP
    y: np.ndarray  # (n_windows, n_samples) normalized ECG
    portraits: tuple[Portrait, ...]

    def __len__(self) -> int:
        return len(self.portraits)

    def occupancy_matrices(self, n: int = 50) -> np.ndarray:
        """All windows' ``n x n`` count matrices as one ``(m, n, n)`` tensor.

        A single flat ``np.bincount`` replaces the per-window
        ``np.add.at`` scatter; counts are integers, so equality with
        :meth:`Portrait.occupancy_matrix` is exact.
        """
        if n < 1:
            raise ValueError("grid size must be >= 1")
        m = self.x.shape[0]
        col = np.minimum((self.y * n).astype(np.intp), n - 1)
        row = np.minimum((self.x * n).astype(np.intp), n - 1)
        flat = (
            np.arange(m, dtype=np.intp)[:, None] * (n * n) + row * n + col
        ).ravel()
        return np.bincount(flat, minlength=m * n * n).reshape(m, n, n)


def build_portrait_batch(
    windows: list[SignalWindow], max_lag_s: float = 0.6
) -> PortraitBatch | None:
    """Vectorized :func:`~repro.core.portrait.build_portrait` over a stream.

    Returns ``None`` for ragged window lengths; callers fall back to the
    scalar loop.  Peak pairing uses the same physiological rule (and the
    same default lag) as the scalar builder.
    """
    stacked = stack_signals(windows)
    if stacked is None:
        return None
    ecg, abp = stacked
    x = normalize_rows(abp)
    y = normalize_rows(ecg)
    portraits = tuple(
        Portrait(
            x=x[i],
            y=y[i],
            r_peaks=np.asarray(w.r_peaks, dtype=np.intp),
            systolic_peaks=np.asarray(w.systolic_peaks, dtype=np.intp),
            peak_pairs=tuple(
                match_peaks(
                    w.r_peaks, w.systolic_peaks, w.sample_rate, max_lag_s
                )
            ),
        )
        for i, w in enumerate(windows)
    )
    return PortraitBatch(x=x, y=y, portraits=portraits)


def masked_sequential_row_means(
    values: np.ndarray, mask: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Row means over the masked entries, accumulated left to right.

    ``values`` and ``mask`` are ``(m, k)``; ``counts`` holds each row's
    number of valid entries (``mask.sum(axis=1)``, passed in because the
    callers already know it).  Rows with no valid entries yield 0.0 --
    the scalar helpers' empty-portrait convention.

    Accumulation walks the columns in order, so each row sums exactly
    like :func:`~repro.core.features.geometric.sequential_mean` walks its
    array: masked-out positions contribute ``+0.0``, which is exact, and
    the closing division is the same single float64 divide.
    """
    values = np.where(mask, values, 0.0)
    total = np.zeros(values.shape[0])
    for j in range(values.shape[1]):
        total = total + values[:, j]
    counts = np.asarray(counts, dtype=np.float64)
    return np.where(counts > 0.0, total / np.where(counts > 0.0, counts, 1.0), 0.0)


def _pad_index_matrix(
    index_lists: "list[np.ndarray]",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ragged index lists -> padded ``(m, k)`` matrix + mask + counts.

    Padding positions index sample 0 -- a valid coordinate, so gathered
    values stay finite and the elementwise geometry never sees NaN; the
    mask is what excludes them from the means.
    """
    m = len(index_lists)
    counts = np.fromiter((len(ix) for ix in index_lists), dtype=np.intp, count=m)
    k = int(counts.max(initial=0))
    indices = np.zeros((m, k), dtype=np.intp)
    for i, ix in enumerate(index_lists):
        if len(ix):
            indices[i, : len(ix)] = ix
    mask = np.arange(k, dtype=np.intp)[None, :] < counts[:, None]
    return indices, mask, counts


@dataclass(frozen=True)
class PeakGeometryBatch:
    """Padded peak coordinates for a whole stream, ready for reduction.

    Three peak families, each as ``(n_windows, max_count)`` coordinate
    matrices with a validity mask and per-window counts: the R peaks
    (``r_*``), the systolic peaks (``s_*``) and the matched R/systolic
    pairs (``pr_*``/``ps_*`` share ``pair_mask``/``pair_counts``).  The
    mean-feature methods return one float64 value per window and are
    bit-identical to the scalar helpers in
    :mod:`~repro.core.features.geometric` and
    :mod:`~repro.core.features.simplified` applied window by window.
    """

    r_x: np.ndarray
    r_y: np.ndarray
    r_mask: np.ndarray
    r_counts: np.ndarray
    s_x: np.ndarray
    s_y: np.ndarray
    s_mask: np.ndarray
    s_counts: np.ndarray
    pr_x: np.ndarray
    pr_y: np.ndarray
    ps_x: np.ndarray
    ps_y: np.ndarray
    pair_mask: np.ndarray
    pair_counts: np.ndarray

    def angle_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-window ``average_peak_angle`` for R and systolic peaks."""
        return (
            masked_sequential_row_means(
                np.arctan2(self.r_y, self.r_x), self.r_mask, self.r_counts
            ),
            masked_sequential_row_means(
                np.arctan2(self.s_y, self.s_x), self.s_mask, self.s_counts
            ),
        )

    def distance_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-window ``average_peak_distance`` for R and systolic peaks."""
        return (
            masked_sequential_row_means(
                np.sqrt(self.r_x**2 + self.r_y**2), self.r_mask, self.r_counts
            ),
            masked_sequential_row_means(
                np.sqrt(self.s_x**2 + self.s_y**2), self.s_mask, self.s_counts
            ),
        )

    def paired_distance_means(self) -> np.ndarray:
        """Per-window ``average_paired_distance`` over the matched pairs."""
        distances = np.sqrt(
            (self.pr_x - self.ps_x) ** 2 + (self.pr_y - self.ps_y) ** 2
        )
        return masked_sequential_row_means(
            distances, self.pair_mask, self.pair_counts
        )

    def slope_means(self, epsilon: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-window ``average_peak_slope`` at the given denominator clamp.

        ``epsilon`` is the Simplified build's ``SLOPE_EPSILON``; it is a
        parameter (not an import) because :mod:`~repro.core.features.
        simplified` imports this module.
        """
        return (
            masked_sequential_row_means(
                self.r_y / np.maximum(self.r_x, epsilon),
                self.r_mask,
                self.r_counts,
            ),
            masked_sequential_row_means(
                self.s_y / np.maximum(self.s_x, epsilon),
                self.s_mask,
                self.s_counts,
            ),
        )

    def squared_distance_means(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-window ``average_squared_peak_distance`` for both families."""
        return (
            masked_sequential_row_means(
                self.r_x**2 + self.r_y**2, self.r_mask, self.r_counts
            ),
            masked_sequential_row_means(
                self.s_x**2 + self.s_y**2, self.s_mask, self.s_counts
            ),
        )

    def paired_squared_distance_means(self) -> np.ndarray:
        """Per-window ``average_squared_paired_distance`` over the pairs."""
        squared = (self.pr_x - self.ps_x) ** 2 + (self.pr_y - self.ps_y) ** 2
        return masked_sequential_row_means(
            squared, self.pair_mask, self.pair_counts
        )


def build_peak_geometry(batch: PortraitBatch) -> PeakGeometryBatch:
    """Gather a batch's ragged peak coordinates into padded matrices.

    One ``take_along_axis`` gather per coordinate family replaces the
    per-window ``r_peak_points()`` / ``systolic_peak_points()`` /
    ``paired_peak_points()`` stacking of the scalar path.
    """
    portraits = batch.portraits
    r_idx, r_mask, r_counts = _pad_index_matrix([p.r_peaks for p in portraits])
    s_idx, s_mask, s_counts = _pad_index_matrix(
        [p.systolic_peaks for p in portraits]
    )
    pair_r, pair_s = [], []
    for p in portraits:
        pair_r.append(np.fromiter((a for a, _ in p.peak_pairs), dtype=np.intp))
        pair_s.append(np.fromiter((b for _, b in p.peak_pairs), dtype=np.intp))
    pr_idx, pair_mask, pair_counts = _pad_index_matrix(pair_r)
    ps_idx, _, _ = _pad_index_matrix(pair_s)
    take = np.take_along_axis
    return PeakGeometryBatch(
        r_x=take(batch.x, r_idx, axis=1),
        r_y=take(batch.y, r_idx, axis=1),
        r_mask=r_mask,
        r_counts=r_counts,
        s_x=take(batch.x, s_idx, axis=1),
        s_y=take(batch.y, s_idx, axis=1),
        s_mask=s_mask,
        s_counts=s_counts,
        pr_x=take(batch.x, pr_idx, axis=1),
        pr_y=take(batch.y, pr_idx, axis=1),
        ps_x=take(batch.x, ps_idx, axis=1),
        ps_y=take(batch.y, ps_idx, axis=1),
        pair_mask=pair_mask,
        pair_counts=pair_counts,
    )
