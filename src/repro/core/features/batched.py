"""Vectorized portrait construction for whole window streams.

The scalar detection path builds one :class:`~repro.core.portrait.Portrait`
per window and extracts features window by window -- dozens of small NumPy
calls per 3-second window.  This module amortizes the heavy per-window
stages across a whole stream at once:

* min-max normalization of every ECG/ABP window in two rowwise passes;
* all occupancy matrices in a single ``np.bincount`` scatter;
* the matrix-feature reductions (SFI, column-average statistics) as one
  axis-reduction over the stacked matrices.

Every batched operation is **bit-identical** to its scalar counterpart:
the elementwise arithmetic is the same float64 expression, and the axis
reductions reduce the same contiguous runs NumPy's scalar calls do.  The
equivalence is locked down by ``tests/core/test_batch_detection.py``.

Peak geometry stays per window (peak counts are ragged), but reuses the
already-normalized coordinates, so the per-window tail is a handful of
tiny operations instead of the full portrait pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.portrait import Portrait
from repro.signals.dataset import SignalWindow
from repro.signals.peaks import match_peaks

__all__ = [
    "PortraitBatch",
    "build_portrait_batch",
    "iter_window_chunks",
    "normalize_rows",
    "spatial_filling_indices",
    "stack_signals",
]


def iter_window_chunks(
    stream, chunk_size: int
) -> Iterator[list[SignalWindow]]:
    """Cut a stream into lists of at most ``chunk_size`` windows.

    ``stream`` is anything with a ``windows`` attribute (e.g. a
    :class:`~repro.attacks.scenario.LabeledStream`), a sequence of
    windows, or a lazy iterator.  Consumption is incremental: at most one
    chunk of windows is pulled from a lazy source at a time, so chunked
    scoring over a generator never materializes the whole stream.  An
    empty stream yields no chunks (not an empty list).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    windows = iter(getattr(stream, "windows", stream))
    while True:
        chunk = list(itertools.islice(windows, chunk_size))
        if not chunk:
            return
        yield chunk


def stack_signals(
    windows: list[SignalWindow],
) -> tuple[np.ndarray, np.ndarray] | None:
    """``(ecg, abp)`` as ``(n_windows, n_samples)`` matrices.

    Returns ``None`` when the windows have ragged lengths (the batch path
    then falls back to the per-window loop).
    """
    if not windows:
        return None
    length = windows[0].n_samples
    if any(w.n_samples != length for w in windows):
        return None
    ecg = np.stack([w.ecg for w in windows])
    abp = np.stack([w.abp for w in windows])
    return ecg, abp


def normalize_rows(signals: np.ndarray) -> np.ndarray:
    """Rowwise min-max normalization to [0, 1].

    Bit-identical to :func:`~repro.core.portrait.normalize_signal` applied
    per row: the same ``(signal - low) / (high - low)`` float64 arithmetic,
    with constant rows mapped to all 0.5.
    """
    signals = np.asarray(signals, dtype=np.float64)
    low = signals.min(axis=1, keepdims=True)
    high = signals.max(axis=1, keepdims=True)
    span = high - low
    flat = (high <= low).ravel()
    out = (signals - low) / np.where(span > 0.0, span, 1.0)
    if flat.any():
        out[flat] = 0.5
    return out


def spatial_filling_indices(matrices: np.ndarray) -> np.ndarray:
    """Batched :func:`~repro.core.features.matrix.spatial_filling_index`.

    ``matrices`` is the stacked float64 occupancy tensor ``(m, n, n)``;
    empty matrices yield 0.0, matching the scalar function.
    """
    matrices = np.asarray(matrices, dtype=np.float64)
    n = matrices.shape[1]
    totals = matrices.sum(axis=(1, 2))
    out = np.zeros(matrices.shape[0])
    occupied = totals > 0
    if occupied.any():
        p = matrices[occupied] / totals[occupied, None, None]
        out[occupied] = n**2 * np.sum(p**2, axis=(1, 2))
    return out


@dataclass(frozen=True)
class PortraitBatch:
    """Normalized portrait coordinates for a whole stream of windows.

    ``x``/``y`` hold every window's normalized ABP/ECG as rows;
    ``portraits`` are per-window :class:`Portrait` views into those rows
    (peak geometry is ragged, so it stays per window).
    """

    x: np.ndarray  # (n_windows, n_samples) normalized ABP
    y: np.ndarray  # (n_windows, n_samples) normalized ECG
    portraits: tuple[Portrait, ...]

    def __len__(self) -> int:
        return len(self.portraits)

    def occupancy_matrices(self, n: int = 50) -> np.ndarray:
        """All windows' ``n x n`` count matrices as one ``(m, n, n)`` tensor.

        A single flat ``np.bincount`` replaces the per-window
        ``np.add.at`` scatter; counts are integers, so equality with
        :meth:`Portrait.occupancy_matrix` is exact.
        """
        if n < 1:
            raise ValueError("grid size must be >= 1")
        m = self.x.shape[0]
        col = np.minimum((self.y * n).astype(np.intp), n - 1)
        row = np.minimum((self.x * n).astype(np.intp), n - 1)
        flat = (
            np.arange(m, dtype=np.intp)[:, None] * (n * n) + row * n + col
        ).ravel()
        return np.bincount(flat, minlength=m * n * n).reshape(m, n, n)


def build_portrait_batch(
    windows: list[SignalWindow], max_lag_s: float = 0.6
) -> PortraitBatch | None:
    """Vectorized :func:`~repro.core.portrait.build_portrait` over a stream.

    Returns ``None`` for ragged window lengths; callers fall back to the
    scalar loop.  Peak pairing uses the same physiological rule (and the
    same default lag) as the scalar builder.
    """
    stacked = stack_signals(windows)
    if stacked is None:
        return None
    ecg, abp = stacked
    x = normalize_rows(abp)
    y = normalize_rows(ecg)
    portraits = tuple(
        Portrait(
            x=x[i],
            y=y[i],
            r_peaks=np.asarray(w.r_peaks, dtype=np.intp),
            systolic_peaks=np.asarray(w.systolic_peaks, dtype=np.intp),
            peak_pairs=tuple(
                match_peaks(
                    w.r_peaks, w.systolic_peaks, w.sample_rate, max_lag_s
                )
            ),
        )
        for i, w in enumerate(windows)
    )
    return PortraitBatch(x=x, y=y, portraits=portraits)
