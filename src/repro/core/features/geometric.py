"""Original geometric features: angles and Euclidean distances.

Table I's five geometric features "describe the absolute and relative
location of certain characteristic points (like R peaks in ECG and
Systolic peaks in ABP) of the signals in the portrait":

1. average of the angles the R-peak points subtend at the origin;
2. the same for systolic-peak points;
3. average distance from the R-peak points to the origin;
4. average distance from the systolic-peak points to the origin;
5. average distance between each R peak and its corresponding systolic
   peak.

The angle of a point is ``atan2(y, x)`` -- the Simplified build replaces it
with the slope ``y / x`` (its tangent), which is why both builds share this
interpretation.  Windows with no peaks of a kind yield 0.0 for the affected
features: an implausibly empty portrait is itself anomalous and the
classifier learns it as such.

Averages follow the **sequential-mean contract** (:func:`sequential_mean`):
values accumulate left to right, exactly like the device C loop, rather
than via ``np.mean``'s pairwise summation.  The batched extractors
(:mod:`repro.core.features.batched`) accumulate their padded value
matrices column by column in the same order, which is what makes the
batch path bit-identical to these scalar helpers at *every* peak count --
pairwise summation re-associates once an array has 8+ elements, so the
two paths would otherwise drift in the last ulp on dense windows.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "average_paired_distance",
    "average_peak_angle",
    "average_peak_distance",
    "sequential_mean",
]


def sequential_mean(values: np.ndarray) -> float:
    """Left-to-right mean of a 1-D array (the device loop's order).

    ``total = ((v0 + v1) + v2) + ...; total / n`` in float64 -- the
    accumulation order of a C ``for`` loop, and of the batched column
    accumulation in :mod:`repro.core.features.batched`.  Callers handle
    the empty case; an empty array here is a contract violation.
    """
    values = np.asarray(values, dtype=np.float64)
    total = np.float64(0.0)
    for value in values:
        total = total + value
    return float(total / values.size)


def average_peak_angle(points: np.ndarray) -> float:
    """Mean ``atan2(y, x)`` over peak points, 0.0 when there are none."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (m, 2)")
    return sequential_mean(np.arctan2(points[:, 1], points[:, 0]))


def average_peak_distance(points: np.ndarray) -> float:
    """Mean Euclidean distance from peak points to the origin."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (m, 2)")
    return sequential_mean(np.sqrt(points[:, 0] ** 2 + points[:, 1] ** 2))


def average_paired_distance(r_points: np.ndarray, s_points: np.ndarray) -> float:
    """Mean distance between R peaks and their corresponding systolic peaks."""
    r_points = np.asarray(r_points, dtype=np.float64)
    s_points = np.asarray(s_points, dtype=np.float64)
    if r_points.shape != s_points.shape:
        raise ValueError("paired point arrays must have equal shape")
    if r_points.size == 0:
        return 0.0
    deltas = r_points - s_points
    return sequential_mean(np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2))
