"""Original geometric features: angles and Euclidean distances.

Table I's five geometric features "describe the absolute and relative
location of certain characteristic points (like R peaks in ECG and
Systolic peaks in ABP) of the signals in the portrait":

1. average of the angles the R-peak points subtend at the origin;
2. the same for systolic-peak points;
3. average distance from the R-peak points to the origin;
4. average distance from the systolic-peak points to the origin;
5. average distance between each R peak and its corresponding systolic
   peak.

The angle of a point is ``atan2(y, x)`` -- the Simplified build replaces it
with the slope ``y / x`` (its tangent), which is why both builds share this
interpretation.  Windows with no peaks of a kind yield 0.0 for the affected
features: an implausibly empty portrait is itself anomalous and the
classifier learns it as such.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "average_paired_distance",
    "average_peak_angle",
    "average_peak_distance",
]


def average_peak_angle(points: np.ndarray) -> float:
    """Mean ``atan2(y, x)`` over peak points, 0.0 when there are none."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (m, 2)")
    return float(np.mean(np.arctan2(points[:, 1], points[:, 0])))


def average_peak_distance(points: np.ndarray) -> float:
    """Mean Euclidean distance from peak points to the origin."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (m, 2)")
    return float(np.mean(np.sqrt(points[:, 0] ** 2 + points[:, 1] ** 2)))


def average_paired_distance(r_points: np.ndarray, s_points: np.ndarray) -> float:
    """Mean distance between R peaks and their corresponding systolic peaks."""
    r_points = np.asarray(r_points, dtype=np.float64)
    s_points = np.asarray(s_points, dtype=np.float64)
    if r_points.shape != s_points.shape:
        raise ValueError("paired point arrays must have equal shape")
    if r_points.size == 0:
        return 0.0
    deltas = r_points - s_points
    return float(np.mean(np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2)))
