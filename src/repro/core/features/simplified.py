"""Simplified features: the paper's libm-free approximations.

Section III's simplified feature extraction replaces every operation that
would need the C math library:

* standard deviation of the column averages -> **variance** (no ``sqrt``);
* trapezoidal AUC -> the composite-sum formula (identical value, libm-free
  evaluation);
* angle of a peak point -> **slope** ``y / x`` (its tangent, no ``atan``);
* Euclidean distances -> **squared** distances (no ``sqrt``).

Slope denominators are clamped at ``SLOPE_EPSILON`` to mirror the
saturating division the device build performs for points on (or numerically
at) the y-axis.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.base import FeatureExtractor
from repro.core.features.batched import (
    build_peak_geometry,
    build_portrait_batch,
    spatial_filling_indices,
)
from repro.core.features.geometric import sequential_mean
from repro.core.features.matrix import (
    auc_composite,
    column_averages,
    spatial_filling_index,
)
from repro.core.portrait import Portrait
from repro.signals.dataset import SignalWindow

__all__ = [
    "SLOPE_EPSILON",
    "SimplifiedFeatureExtractor",
    "average_peak_slope",
    "average_squared_paired_distance",
    "average_squared_peak_distance",
]

#: Minimum slope denominator; matches one LSB of the device's Q-format
#: x coordinate at the default 14 fractional bits.
SLOPE_EPSILON = 1.0 / (1 << 14)


def average_peak_slope(points: np.ndarray) -> float:
    """Mean ``y / max(x, SLOPE_EPSILON)`` over peak points, 0.0 if none.

    Portrait coordinates are in [0, 1], so ``x`` is non-negative and only
    the near-zero case needs clamping.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (m, 2)")
    x = np.maximum(points[:, 0], SLOPE_EPSILON)
    return sequential_mean(points[:, 1] / x)


def average_squared_peak_distance(points: np.ndarray) -> float:
    """Mean ``x^2 + y^2`` over peak points, 0.0 when there are none."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return 0.0
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (m, 2)")
    return sequential_mean(points[:, 0] ** 2 + points[:, 1] ** 2)


def average_squared_paired_distance(
    r_points: np.ndarray, s_points: np.ndarray
) -> float:
    """Mean ``(xr - xs)^2 + (yr - ys)^2`` over corresponding peak pairs."""
    r_points = np.asarray(r_points, dtype=np.float64)
    s_points = np.asarray(s_points, dtype=np.float64)
    if r_points.shape != s_points.shape:
        raise ValueError("paired point arrays must have equal shape")
    if r_points.size == 0:
        return 0.0
    deltas = r_points - s_points
    return sequential_mean(deltas[:, 0] ** 2 + deltas[:, 1] ** 2)


class SimplifiedFeatureExtractor(FeatureExtractor):
    """The paper's *Simplified version*: 8 features, no libm."""

    requires_libm = False

    _NAMES = (
        "sfi",
        "col_avg_var",
        "col_avg_auc",
        "r_slope_avg",
        "systolic_slope_avg",
        "r_origin_sqdist_avg",
        "systolic_origin_sqdist_avg",
        "r_systolic_sqdist_avg",
    )

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._NAMES

    def extract(self, portrait: Portrait) -> np.ndarray:
        matrix = portrait.occupancy_matrix(self.grid_n)
        col_avg = column_averages(matrix)
        r_points = portrait.r_peak_points()
        s_points = portrait.systolic_peak_points()
        paired_r, paired_s = portrait.paired_peak_points()
        return np.array(
            [
                spatial_filling_index(matrix),
                float(np.var(col_avg)),
                auc_composite(col_avg),
                average_peak_slope(r_points),
                average_peak_slope(s_points),
                average_squared_peak_distance(r_points),
                average_squared_peak_distance(s_points),
                average_squared_paired_distance(paired_r, paired_s),
            ]
        )

    def _extract_batch(self, windows: list[SignalWindow]) -> np.ndarray:
        batch = build_portrait_batch(windows)
        if batch is None:  # ragged window lengths: per-window fallback
            return super()._extract_batch(windows)
        matrices = np.asarray(batch.occupancy_matrices(self.grid_n), dtype=np.float64)
        col_avg = matrices.mean(axis=1)
        out = np.empty((len(windows), self.n_features))
        out[:, 0] = spatial_filling_indices(matrices)
        out[:, 1] = col_avg.var(axis=1)
        # auc_composite per row: 0.5 * sum(f_k + f_{k+1}) along the curve.
        out[:, 2] = 0.5 * np.sum(col_avg[:, :-1] + col_avg[:, 1:], axis=1)
        geometry = build_peak_geometry(batch)
        out[:, 3], out[:, 4] = geometry.slope_means(SLOPE_EPSILON)
        out[:, 5], out[:, 6] = geometry.squared_distance_means()
        out[:, 7] = geometry.paired_squared_distance_means()
        return out
