"""Matrix features: statistics of the n x n portrait occupancy grid C.

The three matrix features of Table I:

* **Spatial filling index** of C -- how concentrated the portrait's point
  mass is.  With normalized cell probabilities ``p_ij = c_ij / N`` we use
  ``SFI = n^2 * sum(p_ij^2)``, which is 1 for a perfectly space-filling
  portrait and ``n^2`` for one collapsed into a single cell.  (The paper
  cites but does not restate the definition; this is the standard
  phase-space formulation up to the ``n^2`` normalization, which only
  rescales the feature and is absorbed by standardization.)
* **Standard deviation of the column averages** of C (variance in the
  Simplified build, avoiding ``sqrt``).
* **Area under the curve** formed by the column averages -- trapezoidal
  integration in the Original build; the Simplified build evaluates the
  paper's composite-sum formula
  ``(b - a) / (2 N) * sum(f(x_n) + f(x_{n+1}))``, which is algebraically
  the same quantity computed without any libm dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "auc_composite",
    "auc_trapezoid",
    "column_averages",
    "spatial_filling_index",
]


def spatial_filling_index(matrix: np.ndarray) -> float:
    """``n^2 * sum((c_ij / N)^2)``; 0.0 for an empty matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("occupancy matrix must be square")
    total = matrix.sum()
    if total == 0:
        return 0.0
    p = matrix / total
    return float(matrix.shape[0] ** 2 * np.sum(p**2))


def column_averages(matrix: np.ndarray) -> np.ndarray:
    """Mean of each column of C (averaging over rows)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("occupancy matrix must be 2-D")
    return matrix.mean(axis=0)


def auc_trapezoid(curve: np.ndarray) -> float:
    """Trapezoidal area under a unit-spaced curve (the Original build)."""
    curve = np.asarray(curve, dtype=np.float64)
    if curve.size < 2:
        return 0.0
    return float(np.trapezoid(curve))


def auc_composite(curve: np.ndarray) -> float:
    """The paper's composite-sum integral for the Simplified build.

    ``(b - a) / (2 N) * sum_{k=1}^{N} (f(x_k) + f(x_{k+1}))`` with unit
    node spacing (``b - a = N``), i.e. ``0.5 * sum(f_k + f_{k+1})``.
    Algebraically identical to :func:`auc_trapezoid`; kept separate
    because the device build computes it in fixed point without libm.
    """
    curve = np.asarray(curve, dtype=np.float64)
    if curve.size < 2:
        return 0.0
    return float(0.5 * np.sum(curve[:-1] + curve[1:]))
