"""Detector version registry.

The paper implements three versions of the SIFT detector "to deal with the
trade-offs between detection performance and resource consumption", and its
adaptive-security vision (Insight #4) switches between them at run time.
This module is the single place that maps a version to its feature
extractor and device-build properties.
"""

from __future__ import annotations

import enum

from repro.core.features.base import FeatureExtractor
from repro.core.features.original import OriginalFeatureExtractor
from repro.core.features.reduced import ReducedFeatureExtractor
from repro.core.features.simplified import SimplifiedFeatureExtractor

__all__ = ["DetectorVersion", "make_extractor"]


class DetectorVersion(enum.Enum):
    """The three detector builds, ordered from heaviest to lightest."""

    ORIGINAL = "original"
    SIMPLIFIED = "simplified"
    REDUCED = "reduced"

    @property
    def requires_libm(self) -> bool:
        return self is DetectorVersion.ORIGINAL

    @property
    def uses_matrix_features(self) -> bool:
        return self is not DetectorVersion.REDUCED

    @property
    def n_features(self) -> int:
        return 5 if self is DetectorVersion.REDUCED else 8

    @classmethod
    def from_name(cls, name: str) -> "DetectorVersion":
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(v.value for v in cls)
            raise ValueError(
                f"unknown detector version {name!r}; expected one of: {valid}"
            ) from None


_EXTRACTORS: dict[DetectorVersion, type[FeatureExtractor]] = {
    DetectorVersion.ORIGINAL: OriginalFeatureExtractor,
    DetectorVersion.SIMPLIFIED: SimplifiedFeatureExtractor,
    DetectorVersion.REDUCED: ReducedFeatureExtractor,
}


def make_extractor(version: DetectorVersion, grid_n: int = 50) -> FeatureExtractor:
    """Instantiate the reference feature extractor for a version."""
    return _EXTRACTORS[version](grid_n=grid_n)
