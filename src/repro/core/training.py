"""Training-set construction.

The paper's training step, per user: slide a ``w``-second window over
``Delta`` time-units of the user's own synchronized ECG+ABP to produce the
*negative* class portraits, and over the same user's ABP paired with
*other* users' ECG to produce the *positive* class -- precisely what a
:class:`~repro.attacks.replacement.ReplacementAttack` applied to the
user's own training windows yields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.replacement import ReplacementAttack
from repro.core.features.base import FeatureExtractor
from repro.signals.dataset import Record, iter_windows

__all__ = ["TrainingSet", "build_training_set"]


@dataclass(frozen=True)
class TrainingSet:
    """Feature matrix with boolean labels (``True`` = positive = altered)."""

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError("feature_names must match X's column count")

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_positive(self) -> int:
        return int(np.sum(self.y))

    @property
    def n_negative(self) -> int:
        return self.n_samples - self.n_positive


def build_training_set(
    extractor: FeatureExtractor,
    training_record: Record,
    donor_records: list[Record],
    window_s: float = 3.0,
    stride_s: float | None = None,
    rng: np.random.Generator | None = None,
    attacks: "list | None" = None,
) -> TrainingSet:
    """Build the per-user positive/negative training set.

    Parameters
    ----------
    extractor:
        Feature extractor of the detector version being trained.
    training_record:
        ``Delta`` time-units of the user's own ECG+ABP.
    donor_records:
        Recordings of "several different users" supplying the positive
        class's foreign ECG.
    window_s / stride_s:
        Sliding-window size and stride (default stride = window size).
    rng:
        Randomness for donor-segment selection; defaults to a fixed seed
        so training is reproducible.
    attacks:
        Sensor-hijacking attacks generating the positive class.  Defaults
        to the paper's protocol -- cross-subject replacement alone.
        Passing several attacks trains against a broader threat model:
        positives are drawn round-robin across the list, keeping the
        class balance.
    """
    if attacks is None:
        if not donor_records:
            raise ValueError("positive class requires at least one donor record")
        attacks = [ReplacementAttack(donor_records)]
    if not attacks:
        raise ValueError("at least one attack is required")
    rng = rng if rng is not None else np.random.default_rng(0)

    negatives = list(iter_windows(training_record, window_s, stride_s))
    if not negatives:
        raise ValueError("training record is shorter than one window")
    positives = [
        attacks[i % len(attacks)].alter(w, rng)
        for i, w in enumerate(negatives)
    ]

    X = extractor.extract_many(negatives + positives)
    y = np.concatenate(
        [np.zeros(len(negatives), dtype=bool), np.ones(len(positives), dtype=bool)]
    )
    return TrainingSet(X=X, y=y, feature_names=extractor.feature_names)
