"""SIFT: SIgnal Feature-correlation-based Testing.

The paper's primary contribution: detect hijacking of an ECG sensor by
checking each ``w``-second ECG snippet for consistency with the trusted
arterial blood pressure (ABP) signal measured in tandem.

Pipeline (paper Fig. 2):

1. **Portrait** -- normalize the two signals and plot them against each
   other: ``P = { (a(t), e(t)) : 0 <= t <= w }``
   (:mod:`repro.core.portrait`);
2. **Feature extraction** -- 3 matrix features over a 50x50 occupancy grid
   plus 5 geometric features over the R/systolic peaks
   (:mod:`repro.core.features`), in *Original*, *Simplified* and *Reduced*
   variants (:mod:`repro.core.versions`);
3. **Training** -- per-user SVM over negative (own) and positive
   (cross-subject) portraits (:mod:`repro.core.training`);
4. **Detection** -- classify each incoming window; positive labels raise
   alerts (:mod:`repro.core.detector`, :mod:`repro.core.alerts`).
"""

from repro.core.alerts import Alert, AlertLog
from repro.core.detector import DEFAULT_CHUNK_SIZE, PLATFORMS, SIFTDetector
from repro.core.features import (
    FeatureExtractor,
    OriginalFeatureExtractor,
    ReducedFeatureExtractor,
    SimplifiedFeatureExtractor,
)
from repro.core.portrait import Portrait, build_portrait
from repro.core.serialization import (
    detector_from_json,
    detector_to_json,
    load_detector,
    save_detector,
)
from repro.core.streaming import AttackEpisode, StreamingDetector
from repro.core.training import TrainingSet, build_training_set
from repro.core.versions import DetectorVersion, make_extractor

__all__ = [
    "Alert",
    "AlertLog",
    "AttackEpisode",
    "DEFAULT_CHUNK_SIZE",
    "DetectorVersion",
    "FeatureExtractor",
    "OriginalFeatureExtractor",
    "PLATFORMS",
    "Portrait",
    "ReducedFeatureExtractor",
    "SIFTDetector",
    "SimplifiedFeatureExtractor",
    "StreamingDetector",
    "TrainingSet",
    "build_portrait",
    "build_training_set",
    "detector_from_json",
    "detector_to_json",
    "load_detector",
    "make_extractor",
    "save_detector",
]
