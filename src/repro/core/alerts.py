"""Alert records.

"If the feature point is deemed to be positive, then this w second ECG
signal snippet is considered to be altered and an alert will be generated."
On the simulated Amulet the alert additionally goes to the LED display; the
:class:`AlertLog` is the platform-independent record of what the detector
raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Alert", "AlertLog"]


@dataclass(frozen=True)
class Alert:
    """One raised alert.

    Attributes
    ----------
    window_index:
        Index of the offending window in the inspected stream.
    time_s:
        Stream time of the window start, in seconds.
    subject_id:
        Wearer whose model raised the alert.
    version:
        Detector version name ("original" / "simplified" / "reduced").
    decision_value:
        The classifier's decision value; larger means more confidently
        altered.
    """

    window_index: int
    time_s: float
    subject_id: str
    version: str
    decision_value: float

    def __post_init__(self) -> None:
        if self.window_index < 0:
            raise ValueError("window_index must be non-negative")


@dataclass
class AlertLog:
    """Append-only log of alerts raised during a stream inspection."""

    alerts: list[Alert] = field(default_factory=list)

    def raise_alert(self, alert: Alert) -> None:
        """Append one alert to the log."""
        self.alerts.append(alert)

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self) -> Iterator[Alert]:
        return iter(self.alerts)

    @property
    def window_indices(self) -> list[int]:
        return [alert.window_index for alert in self.alerts]

    def since(self, time_s: float) -> list[Alert]:
        """Alerts at or after a stream time."""
        return [alert for alert in self.alerts if alert.time_s >= time_s]
