"""A heart-rate display companion app.

Consumes the same :class:`~repro.sift_app.payload.DeviceWindow` snippets
the SIFT detector receives (on the real Amulet both apps subscribe to the
ECG stream through the OS) and maintains an exponentially smoothed heart
rate from the pre-stored R-peak indexes.
"""

from __future__ import annotations

from repro.amulet.qm import Event, QMApp, State, StateMachine
from repro.sift_app.payload import DeviceWindow

__all__ = ["HeartRateApp"]


def _on_sensor_data(app: "HeartRateApp", event: Event) -> str | None:
    window = app.services.fetch_window()
    if window is None:
        return None
    if not isinstance(window, DeviceWindow):
        app.ignored_payloads += 1
        return None
    app._window = window
    return "Computing"


def _compute(app: "HeartRateApp") -> str:
    window = app._window
    assert window is not None, "Computing entered without a window"
    math = app.services.math
    n_beats = int(window.r_peaks.size)
    math.counter.charge("int_op", 4)
    if n_beats >= 2:
        # Rate from the spanned RR intervals: robust to window edges.
        span_samples = int(window.r_peaks[-1] - window.r_peaks[0])
        span_s = span_samples / window.sample_rate
        math.counter.charge("float_div", 2)
        math.counter.charge("float_mul", 1)
        if span_s > 0:
            instantaneous = 60.0 * (n_beats - 1) / span_s
            if app.heart_rate_bpm is None:
                app.heart_rate_bpm = instantaneous
            else:
                # Exponential smoothing, alpha = 1/4 (shift-friendly).
                math.counter.charge("float_mul", 2)
                math.counter.charge("float_add", 1)
                app.heart_rate_bpm += 0.25 * (instantaneous - app.heart_rate_bpm)
            app.windows_seen += 1
            text = app.services.float_to_string(app.heart_rate_bpm, 0)
            app.services.display_write(2, f"HR {text} bpm")
            if app.heart_rate_bpm > app.tachycardia_bpm:
                app.services.alert("HIGH HEART RATE")
    app._window = None
    return "Idle"


class HeartRateApp(QMApp):
    """Smoothed heart-rate display with a tachycardia alert."""

    def __init__(self, name: str = "heart-rate", tachycardia_bpm: float = 150.0) -> None:
        idle = State("Idle").on("SENSOR_DATA", _on_sensor_data)
        computing = State("Computing", on_entry=_compute)
        super().__init__(name, StateMachine([idle, computing], initial="Idle"))
        if tachycardia_bpm <= 0:
            raise ValueError("tachycardia_bpm must be positive")
        self.tachycardia_bpm = float(tachycardia_bpm)
        self.heart_rate_bpm: float | None = None
        self.windows_seen = 0
        self.ignored_payloads = 0
        self._window: DeviceWindow | None = None

    # -- resource declarations ------------------------------------------

    def code_inventory(self) -> dict[str, int]:
        return {
            "window_fetch": 180,
            "rr_rate": 190,
            "smoothing": 90,
            "display_alert": 140,
            "state_glue": 160,
        }

    def static_data_bytes(self) -> dict[str, int]:
        return {"hr_state": 8}

    def sram_peak_bytes(self) -> int:
        return 36

    def uses_libm(self) -> bool:
        return False

    def required_services(self) -> set[str]:
        """System services this app links against."""
        return {"float_arithmetic", "string_float", "signal_arrays"}
