"""A step-counting companion app.

Consumes :class:`~repro.amulet.sensors.SensorBatch` payloads from the
internal ADXL362 accelerometer and counts steps with a threshold-plus-
refractory detector over the acceleration magnitude, the standard
wearable-pedometer algorithm.  Two states: *Idle* (waiting for data) and
*Counting* (processing a batch and updating the display).
"""

from __future__ import annotations

import numpy as np

from repro.amulet.qm import Event, QMApp, State, StateMachine
from repro.amulet.sensors import SensorBatch

__all__ = ["PedometerApp"]

#: Acceleration magnitude above gravity that counts as a step candidate.
_STEP_THRESHOLD_G = 0.25
#: Minimum spacing between steps, in seconds (max ~3.3 steps/s).
_REFRACTORY_S = 0.3


def _on_sensor_data(app: "PedometerApp", event: Event) -> str | None:
    batch = app.services.fetch_window()
    if batch is None:
        return None
    if not isinstance(batch, SensorBatch) or batch.sensor != "accelerometer":
        app.ignored_batches += 1
        return None
    app._batch = batch
    return "Counting"


def _count(app: "PedometerApp") -> str:
    batch = app._batch
    assert batch is not None, "Counting entered without a batch"
    math = app.services.math
    samples = batch.samples.astype(np.float32)

    # Magnitude above gravity, squared to avoid sqrt (no libm linked).
    sq = math.add(
        math.add(
            math.mul(samples[:, 0], samples[:, 0]),
            math.mul(samples[:, 1], samples[:, 1]),
        ),
        math.mul(samples[:, 2], samples[:, 2]),
    )
    threshold_sq = (1.0 + _STEP_THRESHOLD_G) ** 2
    above = sq > threshold_sq
    math.counter.charge("branch", above.size)

    refractory = int(_REFRACTORY_S * batch.sample_rate)
    last = app._last_step_sample - app._samples_seen
    for i in np.flatnonzero(above):
        math.counter.charge("int_op", 2)
        if i - last >= refractory:
            app.steps += 1
            last = int(i)
    app._last_step_sample = app._samples_seen + last
    app._samples_seen += samples.shape[0]

    text = app.services.float_to_string(float(app.steps), 0)
    app.services.display_write(1, f"steps {text}")
    app._batch = None
    return "Idle"


class PedometerApp(QMApp):
    """Step counter sharing the Amulet with the SIFT detector."""

    def __init__(self, name: str = "pedometer") -> None:
        idle = State("Idle").on("SENSOR_DATA", _on_sensor_data)
        counting = State("Counting", on_entry=_count)
        super().__init__(
            name, StateMachine([idle, counting], initial="Idle")
        )
        self.steps = 0
        self.ignored_batches = 0
        self._batch: SensorBatch | None = None
        self._samples_seen = 0
        self._last_step_sample = -(10**9)

    # -- resource declarations ------------------------------------------

    def code_inventory(self) -> dict[str, int]:
        return {
            "batch_fetch": 180,
            "magnitude_threshold": 220,
            "step_refractory": 140,
            "display_update": 120,
            "state_glue": 160,
        }

    def static_data_bytes(self) -> dict[str, int]:
        return {"step_counter": 4, "gait_state": 12}

    def sram_peak_bytes(self) -> int:
        return 48

    def uses_libm(self) -> bool:
        return False

    def required_services(self) -> set[str]:
        """System services this app links against."""
        return {"float_arithmetic", "string_float"}
