"""Companion Amulet applications.

The Amulet "allows multiple applications from different third party
developers to be deployed on the same device", and the paper's adaptive
vision assumes the SIFT detector coexists with ordinary wellness apps.
These are two such apps, in the style of the Amulet paper's example suite:

- :class:`~repro.apps.pedometer.PedometerApp` -- step counting from the
  internal accelerometer;
- :class:`~repro.apps.heart_rate.HeartRateApp` -- heart-rate display from
  the same ECG windows the detector consumes.

Both are complete QM apps with resource declarations, so they install
next to the SIFT detector in one firmware image and compete for the same
energy budget.
"""

from repro.apps.heart_rate import HeartRateApp
from repro.apps.pedometer import PedometerApp

__all__ = ["HeartRateApp", "PedometerApp"]
