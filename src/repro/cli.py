"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart flow: train one detector, attack the stream, report.
``table2`` / ``table3`` / ``fig3``
    Regenerate the paper's tables and figure (``--quick`` for a reduced
    cohort).
``profile``
    Build one detector version, deploy it on the simulated Amulet and
    print the ARP-view pane.
``export``
    Train a detector and write its deployable artifacts: the JSON model
    and the generated C decision function.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIFT sensor-hijacking detection on a simulated Amulet "
        "(ICDCS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train, attack, detect (quickstart)")
    demo.add_argument("--version", default="simplified",
                      choices=("original", "simplified", "reduced"))
    demo.add_argument("--seed", type=int, default=42)

    for name in ("table2", "table3", "fig3"):
        table = sub.add_parser(name, help=f"regenerate the paper's {name}")
        table.add_argument("--quick", action="store_true",
                           help="reduced cohort, short training")
        table.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                           help="worker processes (1 = serial, the default)")
        table.add_argument("--cache-budget-mb", type=_positive_int, default=None,
                           metavar="MB",
                           help="LRU byte budget of the experiment cache, per "
                           "process (default: 128 MB; results are identical "
                           "at any budget)")
        if name == "table2":
            table.add_argument("--chunk-size", type=_positive_int, default=None,
                               metavar="W",
                               help="windows scored per chunk in the reference "
                               "evaluation (default: 256; scores are "
                               "bit-identical at any chunk size)")

    profile = sub.add_parser("profile", help="ARP-view pane for one build")
    profile.add_argument("--version", default="original",
                         choices=("original", "simplified", "reduced"))

    export = sub.add_parser("export", help="write deployable model artifacts")
    export.add_argument("--version", default="simplified",
                        choices=("simplified", "reduced"))
    export.add_argument("--out", type=Path, default=Path("sift_model"),
                        help="output path stem (.json and .c are appended)")
    return parser


def _config(quick: bool):
    from repro.experiments import ExperimentConfig

    return ExperimentConfig.quick() if quick else ExperimentConfig()


def _cache_bytes(args) -> int | None:
    """The --cache-budget-mb flag in bytes (None = keep the default)."""
    mb = getattr(args, "cache_budget_mb", None)
    return None if mb is None else mb * 1024 * 1024


def _print_cache_stats() -> None:
    """One stderr line of experiment-cache accounting after a run."""
    from repro.experiments import EXPERIMENT_CACHE

    stats = EXPERIMENT_CACHE.stats()
    if stats["max_bytes"] < 0:
        budget = "unbounded"
    else:
        budget = f"{stats['max_bytes'] / 2**20:.0f} MiB"
    print(
        f"experiment cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions, "
        f"{stats['resident_bytes'] / 2**20:.1f} MiB resident "
        f"(budget {budget})",
        file=sys.stderr,
    )


def _train_demo_detector(version: str):
    from repro.core import SIFTDetector
    from repro.signals import SyntheticFantasia

    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    detector = SIFTDetector(version=version)
    detector.fit(
        data.training_record(victim),
        [data.record(s, 120.0, "train") for s in others[:3]],
    )
    return data, victim, others, detector


def _cmd_demo(args) -> int:
    from repro.attacks import AttackScenario, ReplacementAttack

    data, victim, others, detector = _train_demo_detector(args.version)
    stream = AttackScenario(
        ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    ).build(data.test_record(victim), np.random.default_rng(args.seed))
    report = detector.evaluate(stream)
    fp, fn, acc, f1 = report.as_percent_row()
    print(f"subject {victim.subject_id}, {args.version} build, "
          f"{len(stream)} windows ({stream.n_altered} altered)")
    print(f"FP {fp:.2f}%  FN {fn:.2f}%  accuracy {acc:.2f}%  F1 {f1:.2f}%")
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments import format_table2, run_table2

    result = run_table2(
        _config(args.quick),
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        cache_bytes=_cache_bytes(args),
    )
    print(format_table2(result))
    for failure in result.failures:
        print(
            f"warning: subject {failure.subject_id} "
            f"({failure.version.value}) failed: {failure.error}",
            file=sys.stderr,
        )
    _print_cache_stats()
    return 0


def _cmd_table3(args) -> int:
    from repro.experiments import format_table3, run_table3

    print(format_table3(run_table3(
        _config(args.quick), jobs=args.jobs, cache_bytes=_cache_bytes(args)
    )))
    _print_cache_stats()
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments import format_fig3, run_fig3

    print(format_fig3(run_fig3(
        _config(args.quick), jobs=args.jobs, cache_bytes=_cache_bytes(args)
    )))
    _print_cache_stats()
    return 0


def _cmd_profile(args) -> int:
    from repro.amulet import render_memory_map, render_profile
    from repro.attacks import AttackScenario, ReplacementAttack
    from repro.sift_app import AmuletSIFTRunner

    data, victim, others, detector = _train_demo_detector(args.version)
    runner = AmuletSIFTRunner(detector)
    stream = AttackScenario(
        ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    ).build(data.test_record(victim), np.random.default_rng(0))
    runner.run_stream(stream)
    print(render_memory_map(runner.image))
    print()
    print(render_profile(runner.profile(period_s=3.0)))
    return 0


def _cmd_export(args) -> int:
    from repro.core.serialization import save_detector

    _, victim, _, detector = _train_demo_detector(args.version)
    json_path = args.out.with_suffix(".json")
    c_path = args.out.with_suffix(".c")
    save_detector(detector, json_path)
    c_path.write_text(detector.deploy().to_c_source())
    print(f"wrote {json_path} (model for {victim.subject_id}) and {c_path}")
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig3": _cmd_fig3,
    "profile": _cmd_profile,
    "export": _cmd_export,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
