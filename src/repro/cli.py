"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart flow: train one detector, attack the stream, report.
``table2`` / ``table3`` / ``fig3``
    Regenerate the paper's tables and figure (``--quick`` for a reduced
    cohort).
``orchestrate``
    The checkpointed driver over the full study matrix: every completed
    (study, config) unit is persisted as a JSONL checkpoint, re-runs skip
    completed units, interrupted sweeps resume mid-matrix, ``--reeval``
    re-renders every report with zero recomputation, and a completed run
    emits a ``BENCH_<stamp>.json`` perf trajectory.
``bench-gate``
    The CI perf-regression gate: compare two trajectory files and fail
    when a study's calibrated wall-clock or throughput regressed past
    the threshold.
``gateway-bench``
    Drive a fleet of simulated wearers through the async ingestion
    gateway and report sustained windows/sec plus p50/p99 verdict
    latency; SIGINT drains and finalizes every session before exit.
``chaos``
    Seeded runtime-fault schedules (scorer crash/stall/slow/poison,
    gateway kill-and-restart, snapshot truncation) against the
    supervised gateway; exits non-zero when any conservation or
    bit-identity invariant breaks.
``fault-matrix``
    Sweep named sensor/channel faults across severities and report
    accuracy, coverage and abstain rate per cell.
``profile``
    Build one detector version, deploy it on the simulated Amulet and
    print the ARP-view pane.
``export``
    Train a detector and write its deployable artifacts: the JSON model
    and the generated C decision function (checked by the C-codegen
    contract linter before it is written).
``lint``
    Static analysis of the device contracts: the libm gate (DEV001),
    the fixed-point float ban (DEV002), determinism (DET001), the
    accumulator overflow proof (OVF001) and the C-codegen checker.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be a non-negative integer")
    return value


def _unit_float(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError("must be in [0, 1]")
    return value


def _csv_list(text: str) -> list[str]:
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return items


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIFT sensor-hijacking detection on a simulated Amulet "
        "(ICDCS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train, attack, detect (quickstart)")
    demo.add_argument("--version", default="simplified",
                      choices=("original", "simplified", "reduced"))
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--platform", default="numpy",
                      choices=("numpy", "native"),
                      help="scoring path: 'numpy' (default) or 'native' "
                      "(generated-C hot path, bit-identical, falls back "
                      "to numpy with a warning if no C compiler)")

    for name in ("table2", "table3", "fig3"):
        table = sub.add_parser(name, help=f"regenerate the paper's {name}")
        table.add_argument("--quick", action="store_true",
                           help="reduced cohort, short training")
        table.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                           help="worker processes (1 = serial, the default)")
        table.add_argument("--cache-budget-mb", type=_positive_int, default=None,
                           metavar="MB",
                           help="LRU byte budget of the experiment cache, per "
                           "process (default: 128 MB; results are identical "
                           "at any budget)")
        if name == "table2":
            table.add_argument("--chunk-size", type=_positive_int, default=None,
                               metavar="W",
                               help="windows scored per chunk in the reference "
                               "evaluation (default: 256; scores are "
                               "bit-identical at any chunk size)")
            table.add_argument("--task-timeout", type=_positive_float,
                               default=None, metavar="S",
                               help="seconds before a hung per-subject task is "
                               "terminated (default: wait forever)")
            table.add_argument("--retries", type=_nonnegative_int, default=0,
                               metavar="N",
                               help="retries per failed per-subject task "
                               "(default: 0 = fail fast)")
            table.add_argument("--retry-backoff", type=_positive_float,
                               default=0.5, metavar="S",
                               help="base of the exponential backoff between "
                               "retries (default: 0.5 s)")
            table.add_argument("--no-shared-dataset", action="store_true",
                               help="disable the zero-copy dataset plane: "
                               "workers re-synthesize the cohort instead of "
                               "attaching the parent's shared-memory copy "
                               "(results are identical; diagnostic only)")

    orchestrate = sub.add_parser(
        "orchestrate",
        help="checkpointed run of the full study matrix (resumable; "
        "emits a BENCH_<stamp>.json perf trajectory)",
    )
    orchestrate.add_argument("--quick", action="store_true",
                             help="reduced cohort, trimmed sweeps")
    orchestrate.add_argument("--jobs", type=_positive_int, default=1,
                             metavar="N",
                             help="worker processes for cohort-fanning units "
                             "(results are identical at any worker count)")
    orchestrate.add_argument("--studies", type=_csv_list, default=None,
                             metavar="A,B,...",
                             help="comma-separated study names (default: all; "
                             "see repro.experiments.orchestrator.study_names)")
    orchestrate.add_argument("--reeval", action="store_true",
                             help="regenerate reports from checkpoints alone "
                             "(zero recomputation; fails on any missing unit)")
    orchestrate.add_argument("--fresh", action="store_true",
                             help="drop the selected studies' checkpoints "
                             "first and recompute everything")
    orchestrate.add_argument("--checkpoint-dir", type=Path,
                             default=Path("benchmarks/results/checkpoints"),
                             metavar="DIR",
                             help="where unit checkpoints live")
    orchestrate.add_argument("--results-dir", type=Path,
                             default=Path("benchmarks/results"), metavar="DIR",
                             help="where reports and trajectories land")
    orchestrate.add_argument("--no-trajectory", action="store_true",
                             help="skip the BENCH_<stamp>.json perf record")

    gate = sub.add_parser(
        "bench-gate",
        help="compare two BENCH_*.json trajectories; exit 1 on regression",
    )
    gate.add_argument("baseline", type=Path,
                      help="committed baseline trajectory (a BENCH_*.json "
                      "file, or a directory: its newest BENCH_*.json)")
    gate.add_argument("current", type=Path,
                      help="freshly produced trajectory to check (file or "
                      "directory, as with the baseline)")
    gate.add_argument("--threshold", type=_positive_float, default=0.2,
                      metavar="R",
                      help="allowed fractional slowdown (default: 0.2 = 20%%)")
    gate.add_argument("--min-wall-s", type=_positive_float, default=1.0,
                      metavar="S",
                      help="noise floor: studies faster than this on both "
                      "sides never gate (default: 1.0 s)")

    gateway = sub.add_parser(
        "gateway-bench",
        help="drive a fleet of simulated wearers through the async "
        "ingestion gateway and report throughput + verdict latency "
        "(SIGINT triggers an orderly drain, not a mid-batch abort)",
    )
    gateway.add_argument("--wearers", type=_positive_int, default=256,
                         metavar="N",
                         help="concurrent wearer sessions (default: 256)")
    gateway.add_argument("--stream-s", type=_positive_float, default=30.0,
                         metavar="S",
                         help="seconds of recording each wearer streams "
                         "(default: 30 = 10 windows/wearer)")
    gateway.add_argument("--batch-size", type=_positive_int, default=256,
                         metavar="W",
                         help="micro-batch size (default: 256; verdicts are "
                         "bit-identical at any batch size)")
    gateway.add_argument("--loss", type=_unit_float, default=0.02,
                         metavar="P",
                         help="per-packet channel loss probability "
                         "(default: 0.02)")
    gateway.add_argument("--degradation", action="store_true",
                         help="give each session its own quality-driven "
                         "tier controller with simplified/reduced fallbacks")
    gateway.add_argument("--supervised", action="store_true",
                         help="score through the crash-isolated subprocess "
                         "backend (watchdog + breaker) instead of in-process")
    gateway.add_argument("--sanitize-loop", action="store_true",
                         help="time every asyncio callback and fail the run "
                         "if any holds the event loop past the stall "
                         "threshold (the dynamic check behind ASYNC001)")
    gateway.add_argument("--stall-threshold-s", type=_positive_float,
                         default=0.25, metavar="S",
                         help="event-loop stall threshold for "
                         "--sanitize-loop (default: 0.25)")
    gateway.add_argument("--platform", default="numpy",
                         choices=("numpy", "native"),
                         help="scoring path: 'numpy' (default) or 'native' "
                         "(generated-C hot path; verdicts are "
                         "bit-identical, only throughput changes)")
    gateway.add_argument("--seed", type=int, default=2017)

    chaos = sub.add_parser(
        "chaos",
        help="seeded runtime-fault schedules against the supervised "
        "gateway; non-zero exit on any invariant violation",
    )
    chaos.add_argument("--schedule", default="all",
                       help="fault schedule to run: one of the named "
                       "schedules (see repro.faults.schedule_names), "
                       "'restart', 'truncation', or 'all' (default)")
    chaos.add_argument("--wearers", type=_positive_int, default=8,
                       metavar="N",
                       help="fleet size for the scorer-fault schedules "
                       "(default: 8)")
    chaos.add_argument("--stream-s", type=_positive_float, default=12.0,
                       metavar="S",
                       help="seconds of recording per wearer (default: 12)")
    chaos.add_argument("--seed", type=int, default=2017)

    matrix = sub.add_parser(
        "fault-matrix",
        help="fault x severity robustness grid (accuracy/coverage/abstain)",
    )
    matrix.add_argument("--quick", action="store_true",
                        help="reduced cohort, short training")
    matrix.add_argument("--faults", type=_csv_list, default=None,
                        metavar="A,B,...",
                        help="comma-separated fault names (default: all; see "
                        "repro.faults.fault_names)")
    matrix.add_argument("--severities", type=_csv_list, default=None,
                        metavar="X,Y,...",
                        help="comma-separated severities in [0, 1] "
                        "(default: 0,0.25,0.5,1)")
    matrix.add_argument("--subjects", type=_positive_int, default=None,
                        metavar="N",
                        help="evaluate only the first N subjects")
    matrix.add_argument("--sqi-threshold", type=_unit_float, default=0.6,
                        metavar="Q",
                        help="signal-quality score below which the base "
                        "station abstains (default: 0.6)")

    profile = sub.add_parser("profile", help="ARP-view pane for one build")
    profile.add_argument("--version", default="original",
                         choices=("original", "simplified", "reduced"))

    export = sub.add_parser("export", help="write deployable model artifacts")
    export.add_argument("--version", default="simplified",
                        choices=("simplified", "reduced"))
    export.add_argument("--out", type=Path, default=Path("sift_model"),
                        help="output path stem (.json and .c are appended)")
    export.add_argument("--skip-c-check", action="store_true",
                        help="write the generated C even if the codegen "
                        "contract checker rejects it")
    export.add_argument("--native-c", action="store_true",
                        help="also write the gateway-side generated-C hot "
                        "path (<out>.native.c, checked against the "
                        "'native' lint profile)")

    lint = sub.add_parser(
        "lint",
        help="static analysis of the device contracts (DEV/DET/OVF/CGEN)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _config(quick: bool):
    from repro.experiments import ExperimentConfig

    return ExperimentConfig.quick() if quick else ExperimentConfig()


def _cache_bytes(args) -> int | None:
    """The --cache-budget-mb flag in bytes (None = keep the default)."""
    mb = getattr(args, "cache_budget_mb", None)
    return None if mb is None else mb * 1024 * 1024


def _print_cache_stats() -> None:
    """One stderr line of experiment-cache accounting after a run."""
    from repro.experiments import EXPERIMENT_CACHE

    stats = EXPERIMENT_CACHE.stats()
    if stats["max_bytes"] < 0:
        budget = "unbounded"
    else:
        budget = f"{stats['max_bytes'] / 2**20:.0f} MiB"
    print(
        f"experiment cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions, "
        f"{stats['resident_bytes'] / 2**20:.1f} MiB resident "
        f"(budget {budget})",
        file=sys.stderr,
    )


def _train_demo_detector(version: str, platform: str = "numpy"):
    from repro.core import SIFTDetector
    from repro.signals import SyntheticFantasia

    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    detector = SIFTDetector(version=version, platform=platform)
    detector.fit(
        data.training_record(victim),
        [data.record(s, 120.0, "train") for s in others[:3]],
    )
    return data, victim, others, detector


def _cmd_demo(args) -> int:
    from repro.attacks import AttackScenario, ReplacementAttack

    data, victim, others, detector = _train_demo_detector(
        args.version, platform=args.platform
    )
    stream = AttackScenario(
        ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    ).build(data.test_record(victim), np.random.default_rng(args.seed))
    report = detector.evaluate(stream)
    fp, fn, acc, f1 = report.as_percent_row()
    scored_on = "native" if detector.native_active else "numpy"
    print(f"subject {victim.subject_id}, {args.version} build, "
          f"{len(stream)} windows ({stream.n_altered} altered), "
          f"scored on {scored_on}")
    print(f"FP {fp:.2f}%  FN {fn:.2f}%  accuracy {acc:.2f}%  F1 {f1:.2f}%")
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments import format_table2, run_table2

    result = run_table2(
        _config(args.quick),
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        cache_bytes=_cache_bytes(args),
        task_timeout_s=args.task_timeout,
        max_retries=args.retries,
        retry_backoff_s=args.retry_backoff,
        share_dataset=not args.no_shared_dataset,
    )
    print(format_table2(result))
    for failure in result.failures:
        detail = (
            failure.fault.describe() if failure.fault else failure.error
        )
        print(
            f"warning: subject {failure.subject_id} "
            f"({failure.version.value}) failed: {detail}",
            file=sys.stderr,
        )
    _print_cache_stats()
    return 0


def _cmd_orchestrate(args) -> int:
    from repro.experiments.orchestrator import (
        CheckpointError,
        MissingCheckpointError,
        Orchestrator,
    )

    orchestrator = Orchestrator(
        quick=args.quick,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        results_dir=args.results_dir,
        echo=lambda message: print(message, file=sys.stderr),
    )
    try:
        run = orchestrator.run(
            studies=args.studies,
            reeval=args.reeval,
            fresh=args.fresh,
            trajectory=not args.no_trajectory,
        )
    except MissingCheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for study in run.studies:
        cached = len(study.units) - study.recomputed_units
        print(
            f"{study.name}: {study.recomputed_units} computed, "
            f"{cached} from checkpoints, {study.wall_s:.2f}s"
        )
        for name, path in sorted(study.reports.items()):
            print(f"  {name}: {path}")
    if run.trajectory_path is not None:
        print(f"trajectory: {run.trajectory_path}")
    _print_cache_stats()
    return 0


def _resolve_trajectory(path: Path) -> Path:
    """A trajectory file as given, or the newest ``BENCH_*.json`` inside
    a directory.  Bench sessions stamp one file per run, so gating jobs
    can point at the results directory instead of guessing the stamp."""
    if not path.is_dir():
        return path
    candidates = sorted(
        path.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )
    if not candidates:
        raise FileNotFoundError(f"no BENCH_*.json trajectory in {path}")
    return candidates[-1]


def _cmd_bench_gate(args) -> int:
    from repro.experiments.orchestrator import (
        CheckpointError,
        compare_trajectories,
        load_trajectory,
    )

    try:
        baseline = load_trajectory(_resolve_trajectory(args.baseline))
        current = load_trajectory(_resolve_trajectory(args.current))
    except (OSError, ValueError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    regressions, lines = compare_trajectories(
        baseline, current, threshold=args.threshold, min_wall_s=args.min_wall_s
    )
    for line in lines:
        print(line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} perf regression(s):")
        for regression in regressions:
            print(f"  - {regression}")
        return 1
    print("\nOK: no perf regressions past the threshold")
    return 0


def _cmd_gateway_bench(args) -> int:
    from repro.gateway import run_gateway_load

    report = run_gateway_load(
        n_wearers=args.wearers,
        stream_s=args.stream_s,
        batch_size=args.batch_size,
        loss_probability=args.loss,
        with_degradation=args.degradation,
        supervised=args.supervised,
        seed=args.seed,
        install_sigint=True,
        sanitize_loop=args.sanitize_loop,
        stall_threshold_s=args.stall_threshold_s,
        platform=args.platform,
    )
    print(report.summary())
    failed = False
    if not report.loop_clean:
        print(
            f"error: event loop stalled {report.loop_stalls} time(s), "
            f"worst {report.max_loop_stall_s * 1e3:.1f} ms past the "
            f"{args.stall_threshold_s * 1e3:.0f} ms threshold",
            file=sys.stderr,
        )
        failed = True
    if report.leaked_sessions:
        print(
            f"error: {report.leaked_sessions} session(s) leaked past "
            "shutdown",
            file=sys.stderr,
        )
        failed = True
    if not report.conservation_ok:
        stats = report.stats
        accounted = (
            stats.verdicts
            + stats.windows_shed
            + stats.incomplete_windows
            + report.windows_vanished
        )
        print(
            f"error: window conservation broken -- {accounted} accounted "
            f"!= {report.windows_sent} sent",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    import tempfile

    from repro.faults.runtime import (
        ChaosInvariantError,
        run_chaos_schedule,
        run_restart_chaos,
        run_truncation_chaos,
        schedule_names,
    )

    if args.schedule == "all":
        selected = [*schedule_names(), "restart", "truncation"]
    else:
        selected = [args.schedule]
    known = {*schedule_names(), "restart", "truncation"}
    unknown = [name for name in selected if name not in known]
    if unknown:
        print(
            f"error: unknown schedule(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))}, all)",
            file=sys.stderr,
        )
        return 2

    failures = 0
    for name in selected:
        try:
            if name == "restart":
                with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
                    report = run_restart_chaos(
                        Path(tmp) / "sessions.jsonl", seed=args.seed
                    )
                detail = (
                    f"restart window verdicts={report.restart_window_verdicts} "
                    f"bit-identical outside={report.bit_identical_outside_restart}"
                )
            elif name == "truncation":
                with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
                    report = run_truncation_chaos(tmp, seed=args.seed)
                detail = (
                    f"{report.points_checked} truncation points, max epoch "
                    f"{max(report.recovered_epochs, default=0)} recovered"
                )
            else:
                report = run_chaos_schedule(
                    name,
                    seed=args.seed,
                    n_wearers=args.wearers,
                    stream_s=args.stream_s,
                )
                sup = report.report.supervisor
                detail = (
                    f"{report.planned_faults} fault(s) injected, "
                    f"{sup.faults} detected, {sup.restarts} restart(s), "
                    f"{sup.windows_degraded} window(s) degraded"
                )
        except ChaosInvariantError as error:
            print(f"chaos {name:<10s} FAIL  {error}")
            failures += 1
            continue
        print(f"chaos {name:<10s} ok    {detail}")
    if failures:
        print(
            f"error: {failures} schedule(s) violated invariants",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fault_matrix(args) -> int:
    from repro.experiments import fault_matrix_study, format_fault_matrix

    severities = (
        [_unit_float(s) for s in args.severities]
        if args.severities is not None
        else (0.0, 0.25, 0.5, 1.0)
    )
    rows = fault_matrix_study(
        _config(args.quick),
        faults=args.faults,
        severities=severities,
        subjects=args.subjects,
        quality_threshold=args.sqi_threshold,
    )
    print(format_fault_matrix(rows))
    _print_cache_stats()
    return 0


def _cmd_table3(args) -> int:
    from repro.experiments import format_table3, run_table3

    print(format_table3(run_table3(
        _config(args.quick), jobs=args.jobs, cache_bytes=_cache_bytes(args)
    )))
    _print_cache_stats()
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments import format_fig3, run_fig3

    print(format_fig3(run_fig3(
        _config(args.quick), jobs=args.jobs, cache_bytes=_cache_bytes(args)
    )))
    _print_cache_stats()
    return 0


def _cmd_profile(args) -> int:
    from repro.amulet import render_memory_map, render_profile
    from repro.attacks import AttackScenario, ReplacementAttack
    from repro.sift_app import AmuletSIFTRunner

    data, victim, others, detector = _train_demo_detector(args.version)
    runner = AmuletSIFTRunner(detector)
    stream = AttackScenario(
        ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    ).build(data.test_record(victim), np.random.default_rng(0))
    runner.run_stream(stream)
    print(render_memory_map(runner.image))
    print()
    print(render_profile(runner.profile(period_s=3.0)))
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.c_checker import check_c_source
    from repro.core.serialization import save_detector

    _, victim, _, detector = _train_demo_detector(args.version)
    json_path = args.out.with_suffix(".json")
    c_path = args.out.with_suffix(".c")
    c_source = detector.deploy().to_c_source()
    findings = check_c_source(c_source, path=str(c_path))
    if findings and not args.skip_c_check:
        for finding in findings:
            print(finding.render(), file=sys.stderr)
        print(
            "error: generated C violates the device contract; artifacts "
            "not written (--skip-c-check to force)",
            file=sys.stderr,
        )
        return 1
    save_detector(detector, json_path)
    c_path.write_text(c_source)
    checked = "unchecked" if args.skip_c_check else "contract-checked"
    print(
        f"wrote {json_path} (model for {victim.subject_id}) and "
        f"{c_path} ({checked})"
    )
    if args.native_c:
        from repro.native import generate_hot_path_source

        native_path = args.out.with_suffix(".native.c")
        native_source = generate_hot_path_source(
            detector.version,
            detector.grid_n,
            detector.svc.coef_,
            float(detector.svc.intercept_),
            detector.scaler.mean_,
            detector.scaler.scale_,
        )
        native_findings = check_c_source(
            native_source, path=str(native_path), profile="native"
        )
        if native_findings and not args.skip_c_check:
            for finding in native_findings:
                print(finding.render(), file=sys.stderr)
            print(
                "error: generated native C violates the native profile; "
                f"{native_path} not written (--skip-c-check to force)",
                file=sys.stderr,
            )
            return 1
        native_path.write_text(native_source)
        print(f"wrote {native_path} (gateway-side hot path, {checked})")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "demo": _cmd_demo,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig3": _cmd_fig3,
    "orchestrate": _cmd_orchestrate,
    "bench-gate": _cmd_bench_gate,
    "gateway-bench": _cmd_gateway_bench,
    "chaos": _cmd_chaos,
    "fault-matrix": _cmd_fault_matrix,
    "profile": _cmd_profile,
    "export": _cmd_export,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
