"""Bounded-memory window assembly shared by the base station and gateway.

Pairing same-sequence ECG and ABP packets used to be three lines of
dictionary bookkeeping -- and a memory leak: a stream whose halves are
sometimes lost parks the surviving half in ``_pending`` forever, and the
completed-sequence dedup set grows one entry per window.  Neither bites
in a two-minute experiment; both bite in a multi-day serving session.

:class:`WindowAssembler` owns the whole policy in O(1) memory:

* **Stale eviction.**  A pending half whose partner is more than
  ``max_pending_lag`` sequences behind the highest sequence seen is
  evicted and counted as an incomplete window -- exactly the accounting
  a ``flush_incomplete`` at end-of-stream would have produced, just paid
  continuously instead of never.
* **Bounded dedup.**  Resolved sequences (classified *or* evicted) live
  in a :class:`BoundedDedup` ring instead of an ever-growing set; a
  retransmission of a sequence older than the ring's capacity can no
  longer be recognized, which is the explicit trade for O(1) state (size
  the ring well above the channel's reordering horizon).
* **Integrity precedence.**  A packet failing its CRC is counted as
  corrupted *even if* its sequence was already resolved: nothing in a
  corrupted payload -- including the sequence number used to call it a
  duplicate -- is trustworthy.  The overlap is still observable via
  ``corrupted_duplicate_packets``, so channel fault statistics can
  separate "new data destroyed" from "retransmission destroyed".
"""

from __future__ import annotations

from collections import deque

from repro.wiot.channel import DeliveredPacket

__all__ = ["BoundedDedup", "WindowAssembler"]

#: Eviction horizon, in sequence numbers, for a half still waiting on its
#: partner.  Generous against any realistic reordering (the channel's
#: jitter spans a couple of windows) while keeping pending state tiny.
DEFAULT_MAX_PENDING_LAG = 256

#: Capacity of the resolved-sequence dedup ring.  Retransmissions arrive
#: within the channel's retry horizon -- a few sequences -- so remembering
#: the last few thousand resolved windows is already far on the safe side.
DEFAULT_DEDUP_CAPACITY = 4096


class BoundedDedup:
    """A FIFO-bounded set of sequence numbers.

    Membership is O(1); once more than ``capacity`` distinct sequences
    have been added, the oldest are forgotten in insertion order.  This
    is the structure that keeps duplicate detection O(1) in stream
    length: correctness degrades only for retransmissions older than the
    whole ring, which a bounded-retry link cannot produce.
    """

    def __init__(self, capacity: int = DEFAULT_DEDUP_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._order: deque[int] = deque()
        self._members: set[int] = set()

    def add(self, sequence: int) -> None:
        """Remember one resolved sequence (idempotent)."""
        if sequence in self._members:
            return
        self._members.add(sequence)
        self._order.append(sequence)
        if len(self._order) > self.capacity:
            self._members.discard(self._order.popleft())

    def __contains__(self, sequence: int) -> bool:
        return sequence in self._members

    def __len__(self) -> int:
        return len(self._members)


class WindowAssembler:
    """Pair same-sequence ECG/ABP deliveries in bounded memory.

    Parameters
    ----------
    max_pending_lag:
        A pending half is evicted (counted in ``incomplete_windows``)
        once the highest sequence seen is more than this many sequences
        ahead of it.  ``None`` disables eviction (the historical
        flush-only behaviour; memory then grows with lost halves).
    dedup_capacity:
        Size of the resolved-sequence ring used for duplicate detection.

    Counters
    --------
    ``incomplete_windows`` counts evicted/flushed halves;
    ``duplicate_packets`` counts intact re-deliveries of an already-seen
    (channel, sequence) or an already-resolved sequence;
    ``corrupted_packets`` counts CRC rejections, of which
    ``corrupted_duplicate_packets`` also claimed an already-resolved
    sequence (see the module docstring for the precedence rationale).
    """

    def __init__(
        self,
        max_pending_lag: int | None = DEFAULT_MAX_PENDING_LAG,
        dedup_capacity: int = DEFAULT_DEDUP_CAPACITY,
    ) -> None:
        if max_pending_lag is not None and max_pending_lag < 1:
            raise ValueError("max_pending_lag must be >= 1 (or None)")
        self.max_pending_lag = max_pending_lag
        self._pending: dict[int, dict[str, DeliveredPacket]] = {}
        self._resolved = BoundedDedup(dedup_capacity)
        self._highest_sequence = -1
        self.incomplete_windows = 0
        self.duplicate_packets = 0
        self.corrupted_packets = 0
        self.corrupted_duplicate_packets = 0

    @property
    def highest_sequence(self) -> int:
        """Highest sequence number seen (-1 before any delivery)."""
        return self._highest_sequence

    @property
    def n_pending(self) -> int:
        """Windows currently waiting on their other half."""
        return len(self._pending)

    @property
    def lowest_pending_sequence(self) -> int | None:
        """Lowest sequence still waiting on its other half, or ``None``.

        Pending slots are insertion-ordered, not sequence-ordered, so a
        reordered stream needs the min over keys.
        """
        return min(self._pending) if self._pending else None

    @property
    def n_resolved_tracked(self) -> int:
        """Resolved sequences currently held by the dedup ring."""
        return len(self._resolved)

    def offer(
        self, delivered: DeliveredPacket
    ) -> tuple[int, dict[str, DeliveredPacket]] | None:
        """Accept one delivery; returns ``(sequence, slot)`` on completion.

        The returned slot maps channel name to its delivery; the caller
        owns classification.  ``None`` means the delivery was absorbed
        (half of a still-incomplete window) or rejected (corrupt, stale,
        duplicate) -- the counters say which.
        """
        packet = delivered.packet
        if (
            delivered.crc32 is not None
            and packet.payload_crc32() != delivered.crc32
        ):
            # Integrity precedence: a payload that fails its CRC is
            # corrupted first, whatever sequence it claims to carry.
            self.corrupted_packets += 1
            if packet.sequence in self._resolved:
                self.corrupted_duplicate_packets += 1
            return None
        if packet.sequence in self._resolved:
            self.duplicate_packets += 1
            return None
        slot = self._pending.setdefault(packet.sequence, {})
        if packet.channel in slot:
            self.duplicate_packets += 1
            return None
        slot[packet.channel] = delivered
        if packet.sequence > self._highest_sequence:
            self._highest_sequence = packet.sequence
        completed: tuple[int, dict[str, DeliveredPacket]] | None = None
        if "ecg" in slot and "abp" in slot:
            del self._pending[packet.sequence]
            self._resolved.add(packet.sequence)
            completed = (packet.sequence, slot)
        self._evict_stale()
        return completed

    def _evict_stale(self) -> None:
        if self.max_pending_lag is None:
            return
        horizon = self._highest_sequence - self.max_pending_lag
        # Fast path: pending is insertion-ordered and streams are near
        # in-order, so the stalest halves sit at the front.
        while self._pending:
            sequence = next(iter(self._pending))
            if sequence >= horizon:
                break
            self._evict(sequence)
        # Reordered insertions can hide a stale half behind a fresh one;
        # a full sweep only when the fast path left more than the lag
        # window can hold keeps the hard O(max_pending_lag) bound while
        # staying amortized O(1) per packet.
        if len(self._pending) > self.max_pending_lag + 1:
            for sequence in [s for s in self._pending if s < horizon]:
                self._evict(sequence)

    def _evict(self, sequence: int) -> None:
        del self._pending[sequence]
        self.incomplete_windows += 1
        # Resolved-by-eviction: a partner arriving after the horizon is
        # a late duplicate of a window already written off, not the seed
        # of a second pending slot (which would double-count the loss).
        self._resolved.add(sequence)

    def flush(self) -> int:
        """Evict every pending half; returns how many windows were lost."""
        lost = len(self._pending)
        for sequence in list(self._pending):
            self._evict(sequence)
        return lost

    # -- snapshot/restore (gateway session persistence) -----------------

    def export_state(self) -> dict:
        """Dump the assembler's mutable state for a session snapshot.

        Pending deliveries are exported as live
        :class:`~repro.wiot.channel.DeliveredPacket` objects -- the
        snapshot codec (:mod:`repro.gateway.snapshot`) owns their JSON
        encoding, this layer owns only *which* state matters.  Insertion
        order of both ``pending`` and the dedup ring is preserved: the
        eviction fast path and the ring's forget order depend on it.
        """
        return {
            "pending": {
                sequence: dict(slot) for sequence, slot in self._pending.items()
            },
            "resolved": list(self._resolved._order),
            "highest_sequence": self._highest_sequence,
            "incomplete_windows": self.incomplete_windows,
            "duplicate_packets": self.duplicate_packets,
            "corrupted_packets": self.corrupted_packets,
            "corrupted_duplicate_packets": self.corrupted_duplicate_packets,
        }

    def restore_state(self, exported: dict) -> None:
        """Resume from an :meth:`export_state` dump (round-trip exact)."""
        self._pending = {
            int(sequence): dict(slot)
            for sequence, slot in exported["pending"].items()
        }
        ring = BoundedDedup(self._resolved.capacity)
        for sequence in exported["resolved"]:
            ring.add(int(sequence))
        self._resolved = ring
        self._highest_sequence = int(exported["highest_sequence"])
        self.incomplete_windows = int(exported["incomplete_windows"])
        self.duplicate_packets = int(exported["duplicate_packets"])
        self.corrupted_packets = int(exported["corrupted_packets"])
        self.corrupted_duplicate_packets = int(
            exported["corrupted_duplicate_packets"]
        )
