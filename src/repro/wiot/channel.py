"""The wireless hop between body sensors and the base station.

Body-area links are short but lossy.  The channel model drops packets
independently with a configurable probability and adds bounded random
latency; the base station must therefore tolerate missing or late halves
of a window (it skips windows it cannot assemble, as a real
store-and-forward pipeline would).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.wiot.sensor import SensorPacket

__all__ = ["DeliveredPacket", "WirelessChannel"]


@dataclass(frozen=True)
class DeliveredPacket:
    """A packet as it arrives at the base station.

    ``crc32`` is the sender-side checksum of the payload, stamped by
    integrity-aware channels (e.g. :class:`repro.faults.FaultyChannel`);
    ``None`` means the link carries no integrity layer.  The base station
    recomputes the CRC on arrival and discards mismatching packets.
    """

    packet: SensorPacket
    arrival_time_s: float
    crc32: int | None = None


@dataclass
class WirelessChannel:
    """Independent-loss, bounded-latency wireless link.

    Parameters
    ----------
    loss_probability:
        Probability that a packet is dropped.
    base_latency_s / jitter_s:
        Arrival time is send time plus the base latency plus a uniform
        jitter in ``[0, jitter_s]``.
    seed:
        Seed for the channel's own RNG.
    """

    loss_probability: float = 0.0
    base_latency_s: float = 0.05
    jitter_s: float = 0.05
    seed: int = 7
    packets_sent: int = field(default=0, init=False)
    packets_dropped: int = field(default=0, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.base_latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def reset(self, loss_probability: float | None = None) -> None:
        """Restore counters and reseed the RNG (optionally re-dialling loss).

        A sweep can reuse one channel instance across sweep points and
        still get the exact drop sequence a freshly constructed channel
        would produce -- counters no longer leak across studies.
        """
        if loss_probability is not None:
            if not 0.0 <= loss_probability < 1.0:
                raise ValueError("loss_probability must be in [0, 1)")
            self.loss_probability = float(loss_probability)
        self.packets_sent = 0
        self.packets_dropped = 0
        self._rng = np.random.default_rng(self.seed)

    def transmit(self, packet: SensorPacket) -> DeliveredPacket | None:
        """Send one packet; ``None`` means the channel dropped it."""
        self.packets_sent += 1
        if self._rng.random() < self.loss_probability:
            self.packets_dropped += 1
            return None
        latency = self.base_latency_s + self._rng.uniform(0.0, self.jitter_s)
        return DeliveredPacket(
            packet=packet, arrival_time_s=packet.start_time_s + latency
        )

    @property
    def delivery_rate(self) -> float:
        if self.packets_sent == 0:
            return 1.0
        return 1.0 - self.packets_dropped / self.packets_sent
