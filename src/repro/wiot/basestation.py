"""The base station: window assembly plus the Amulet-hosted detector.

The base station pairs same-sequence ECG and ABP packets into synchronized
windows, hands each complete window to the SIFT app running on its
simulated Amulet, and forwards the window verdicts downstream to the sink.
Windows whose ECG or ABP half was lost in the channel are counted and
skipped -- a safety-critical detector must not classify half a window.

Graceful degradation: an optional integrity layer (CRC stamped by the
channel) rejects corrupted packets on arrival, and an optional
:class:`~repro.signals.quality.SignalQualityIndex` gate converts
low-quality windows into explicit *abstain* verdicts -- tracked coverage
loss, never a silent skip and never a classification of garbage.

Assembly state is bounded (see :class:`~repro.wiot.assembly
.WindowAssembler`): halves whose partner never arrives are evicted after
``max_pending_lag`` sequences and counted as incomplete windows, and
duplicate detection uses a fixed-capacity ring -- a multi-day stream
runs in O(1) memory even if it is never explicitly flushed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detector import SIFTDetector
from repro.signals.quality import SignalQualityIndex
from repro.sift_app.harness import AmuletSIFTRunner
from repro.sift_app.payload import DeviceWindow
from repro.wiot.assembly import (
    DEFAULT_DEDUP_CAPACITY,
    DEFAULT_MAX_PENDING_LAG,
    WindowAssembler,
)
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sink import Sink

__all__ = ["BaseStation", "WindowVerdict"]


@dataclass(frozen=True)
class WindowVerdict:
    """The base station's decision about one assembled window.

    ``abstained`` marks a window the quality gate refused to classify;
    its ``decision_value`` is NaN and ``altered`` is False (an abstain is
    neither an alert nor a clean bill -- scoring must exclude it).
    ``sqi`` carries the gate's quality index when a gate was consulted.
    """

    sequence: int
    time_s: float
    altered: bool
    decision_value: float
    abstained: bool = False
    sqi: float | None = None


class BaseStation:
    """An Amulet-based base station running one SIFT detector build.

    Parameters
    ----------
    detector:
        A fitted reference detector to deploy on the simulated Amulet.
    sink:
        Downstream sink receiving verdicts (optional).
    quality_gate:
        Optional SQI gate; windows scoring below its threshold yield an
        abstain verdict instead of a classification.  ``None`` (the
        default) keeps the historical classify-everything behaviour.
    max_pending_lag / dedup_capacity:
        Bounds on the assembly state (see
        :class:`~repro.wiot.assembly.WindowAssembler`); the defaults are
        far above the channel's reordering horizon, so short experiment
        runs behave exactly as the unbounded implementation did.
    """

    def __init__(
        self,
        detector: SIFTDetector,
        sink: Sink | None = None,
        quality_gate: SignalQualityIndex | None = None,
        max_pending_lag: int | None = DEFAULT_MAX_PENDING_LAG,
        dedup_capacity: int = DEFAULT_DEDUP_CAPACITY,
    ) -> None:
        self.runner = AmuletSIFTRunner(detector)
        self.sink = sink
        self.quality_gate = quality_gate
        self.verdicts: list[WindowVerdict] = []
        self.abstained_windows = 0
        self.assembler = WindowAssembler(
            max_pending_lag=max_pending_lag, dedup_capacity=dedup_capacity
        )
        self._rejected_windows = 0  # PeaksDataCheck refusals on the device

    @property
    def app(self):
        return self.runner.app

    @property
    def os(self):
        return self.runner.os

    @property
    def incomplete_windows(self) -> int:
        """Windows lost before a decision: evicted/flushed halves plus
        assembled windows the device's data check refused to run."""
        return self.assembler.incomplete_windows + self._rejected_windows

    @property
    def corrupted_packets(self) -> int:
        return self.assembler.corrupted_packets

    @property
    def corrupted_duplicate_packets(self) -> int:
        """CRC rejections whose claimed sequence was already resolved.

        Corruption takes precedence in ``corrupted_packets`` (an
        unverifiable payload's sequence number is itself untrustworthy);
        this counter exposes the overlap so channel statistics can
        separate destroyed retransmissions from destroyed data.
        """
        return self.assembler.corrupted_duplicate_packets

    @property
    def duplicate_packets(self) -> int:
        return self.assembler.duplicate_packets

    def receive(self, delivered: DeliveredPacket | None) -> WindowVerdict | None:
        """Accept one channel delivery; classify when a window completes."""
        if delivered is None:
            return None
        completed = self.assembler.offer(delivered)
        if completed is None:
            return None
        return self._classify(*completed)

    def flush_incomplete(self) -> int:
        """Drop windows still missing a half; returns how many were lost."""
        return self.assembler.flush()

    def _assess_quality(self, window: DeviceWindow):
        """Run the SQI gate over an assembled window (None = no gate)."""
        if self.quality_gate is None:
            return None
        return self.quality_gate.assess(window.as_signal_window())

    def _classify(
        self, sequence: int, slot: dict[str, DeliveredPacket]
    ) -> WindowVerdict:
        ecg = slot["ecg"].packet
        abp = slot["abp"].packet
        if ecg.samples.size != abp.samples.size:
            raise ValueError(
                f"window {sequence}: ECG and ABP packet lengths differ "
                f"({ecg.samples.size} vs {abp.samples.size})"
            )
        window = DeviceWindow(
            ecg=ecg.samples.astype(np.float32),
            abp=abp.samples.astype(np.float32),
            r_peaks=np.asarray(ecg.peak_indexes, dtype=np.intp),
            systolic_peaks=np.asarray(abp.peak_indexes, dtype=np.intp),
            sample_rate=ecg.sample_rate,
        )
        quality = self._assess_quality(window)
        if quality is not None and not quality.usable:
            self.abstained_windows += 1
            verdict = WindowVerdict(
                sequence=sequence,
                time_s=ecg.start_time_s,
                altered=False,
                decision_value=float("nan"),
                abstained=True,
                sqi=quality.sqi,
            )
            self.verdicts.append(verdict)
            if self.sink is not None:
                self.sink.store_verdict(verdict)
            return verdict
        app = self.runner.app
        before = len(app.predictions)
        self.runner.os.deliver_sensor_window(app.name, window)
        self.runner.os.run_until_idle()
        self.runner._windows_run += 1
        if len(app.predictions) == before:
            # PeaksDataCheck rejected the snippet (corrupt peak metadata).
            self._rejected_windows += 1
            verdict = WindowVerdict(
                sequence=sequence,
                time_s=ecg.start_time_s,
                altered=True,  # fail-safe: unverifiable data is suspect
                decision_value=float("nan"),
                sqi=None if quality is None else quality.sqi,
            )
        else:
            verdict = WindowVerdict(
                sequence=sequence,
                time_s=ecg.start_time_s,
                altered=app.predictions[-1],
                decision_value=app.decision_values[-1],
                sqi=None if quality is None else quality.sqi,
            )
        self.verdicts.append(verdict)
        if self.sink is not None:
            self.sink.store_verdict(verdict)
        return verdict

    @property
    def decided_verdicts(self) -> list[WindowVerdict]:
        """Verdicts the detector actually issued (abstains excluded)."""
        return [v for v in self.verdicts if not v.abstained]

    @property
    def alert_count(self) -> int:
        return sum(1 for v in self.verdicts if v.altered and not v.abstained)
