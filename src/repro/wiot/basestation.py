"""The base station: window assembly plus the Amulet-hosted detector.

The base station pairs same-sequence ECG and ABP packets into synchronized
windows, hands each complete window to the SIFT app running on its
simulated Amulet, and forwards the window verdicts downstream to the sink.
Windows whose ECG or ABP half was lost in the channel are counted and
skipped -- a safety-critical detector must not classify half a window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detector import SIFTDetector
from repro.sift_app.harness import AmuletSIFTRunner
from repro.sift_app.payload import DeviceWindow
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sink import Sink

__all__ = ["BaseStation", "WindowVerdict"]


@dataclass(frozen=True)
class WindowVerdict:
    """The base station's decision about one assembled window."""

    sequence: int
    time_s: float
    altered: bool
    decision_value: float


class BaseStation:
    """An Amulet-based base station running one SIFT detector build.

    Parameters
    ----------
    detector:
        A fitted reference detector to deploy on the simulated Amulet.
    sink:
        Downstream sink receiving verdicts (optional).
    """

    def __init__(self, detector: SIFTDetector, sink: Sink | None = None) -> None:
        self.runner = AmuletSIFTRunner(detector)
        self.sink = sink
        self.verdicts: list[WindowVerdict] = []
        self.incomplete_windows = 0
        self._pending: dict[int, dict[str, DeliveredPacket]] = {}

    @property
    def app(self):
        return self.runner.app

    @property
    def os(self):
        return self.runner.os

    def receive(self, delivered: DeliveredPacket | None) -> WindowVerdict | None:
        """Accept one channel delivery; classify when a window completes."""
        if delivered is None:
            return None
        packet = delivered.packet
        slot = self._pending.setdefault(packet.sequence, {})
        slot[packet.channel] = delivered
        if "ecg" not in slot or "abp" not in slot:
            return None
        return self._classify(packet.sequence, slot)

    def flush_incomplete(self) -> int:
        """Drop windows still missing a half; returns how many were lost."""
        lost = len(self._pending)
        self.incomplete_windows += lost
        self._pending.clear()
        return lost

    def _classify(
        self, sequence: int, slot: dict[str, DeliveredPacket]
    ) -> WindowVerdict:
        ecg = slot["ecg"].packet
        abp = slot["abp"].packet
        del self._pending[sequence]
        if ecg.samples.size != abp.samples.size:
            raise ValueError(
                f"window {sequence}: ECG and ABP packet lengths differ "
                f"({ecg.samples.size} vs {abp.samples.size})"
            )
        window = DeviceWindow(
            ecg=ecg.samples.astype(np.float32),
            abp=abp.samples.astype(np.float32),
            r_peaks=np.asarray(ecg.peak_indexes, dtype=np.intp),
            systolic_peaks=np.asarray(abp.peak_indexes, dtype=np.intp),
            sample_rate=ecg.sample_rate,
        )
        app = self.runner.app
        before = len(app.predictions)
        self.runner.os.deliver_sensor_window(app.name, window)
        self.runner.os.run_until_idle()
        self.runner._windows_run += 1
        if len(app.predictions) == before:
            # PeaksDataCheck rejected the snippet (corrupt peak metadata).
            self.incomplete_windows += 1
            verdict = WindowVerdict(
                sequence=sequence,
                time_s=ecg.start_time_s,
                altered=True,  # fail-safe: unverifiable data is suspect
                decision_value=float("nan"),
            )
        else:
            verdict = WindowVerdict(
                sequence=sequence,
                time_s=ecg.start_time_s,
                altered=app.predictions[-1],
                decision_value=app.decision_values[-1],
            )
        self.verdicts.append(verdict)
        if self.sink is not None:
            self.sink.store_verdict(verdict)
        return verdict

    @property
    def alert_count(self) -> int:
        return sum(1 for v in self.verdicts if v.altered)
