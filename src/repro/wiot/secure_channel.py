"""Authenticated transport -- and why it is not enough.

The paper's threat model lists four sensor-hijacking avenues; only the
first (the communication channel) is addressed by conventional link
security.  This module implements that conventional layer -- HMAC-SHA256
packet authentication with a monotonic anti-replay counter -- so the
repository can demonstrate the paper's core motivation experimentally:

* a *network* adversary who injects or replays packets without the key is
  rejected at the base station;
* a *sensor-hijacking* adversary (compromised firmware, sensory-channel
  injection, physical compromise) signs whatever the sensor reports, so
  every forged measurement sails through the authenticated channel --
  which is precisely why the data-driven detector (SIFT) is needed.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

import numpy as np

from repro.wiot.sensor import SensorPacket

__all__ = ["AuthenticatedPacket", "PacketAuthenticator", "PacketVerifier"]


def _packet_digest(key: bytes, packet: SensorPacket, counter: int) -> bytes:
    """HMAC over the packet's semantic content plus the replay counter."""
    h = hmac.new(key, digestmod=hashlib.sha256)
    h.update(packet.sensor_id.encode())
    h.update(packet.channel.encode())
    h.update(packet.sequence.to_bytes(8, "big"))
    h.update(counter.to_bytes(8, "big"))
    h.update(np.ascontiguousarray(packet.samples, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(packet.peak_indexes, dtype=np.int64).tobytes())
    return h.digest()


@dataclass(frozen=True)
class AuthenticatedPacket:
    """A sensor packet with its authentication trailer."""

    packet: SensorPacket
    counter: int
    tag: bytes

    def __post_init__(self) -> None:
        if self.counter < 0:
            raise ValueError("counter must be non-negative")
        if len(self.tag) != 32:
            raise ValueError("tag must be a 32-byte HMAC-SHA256 digest")


class PacketAuthenticator:
    """Sensor-side signer with a monotonic counter.

    A compromised sensor still holds this object -- hijacked data gets
    valid tags.  That is the point.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = bytes(key)
        self._counter = 0

    def sign(self, packet: SensorPacket) -> AuthenticatedPacket:
        """Tag a packet with the next counter value."""
        signed = AuthenticatedPacket(
            packet=packet,
            counter=self._counter,
            tag=_packet_digest(self._key, packet, self._counter),
        )
        self._counter += 1
        return signed


@dataclass
class PacketVerifier:
    """Base-station-side verification with anti-replay state."""

    key: bytes
    accepted: int = 0
    rejected_bad_tag: int = 0
    rejected_replay: int = 0
    _highest_counter: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self.key = bytes(self.key)

    def verify(self, signed: AuthenticatedPacket) -> SensorPacket | None:
        """Return the packet if authentic and fresh, else ``None``."""
        expected = _packet_digest(self.key, signed.packet, signed.counter)
        if not hmac.compare_digest(expected, signed.tag):
            self.rejected_bad_tag += 1
            return None
        sensor = signed.packet.sensor_id
        highest = self._highest_counter.get(sensor, -1)
        if signed.counter <= highest:
            self.rejected_replay += 1
            return None
        self._highest_counter[sensor] = signed.counter
        self.accepted += 1
        return signed.packet
