"""The sink: the resource-rich tier of the WIoT environment.

"The sink is [a] resource-rich device responsible for providing expensive
but non safety-critical operations such as local storage of historical
patient information, visualization tools, and cloud connectivity."  Here
it stores the verdict history and produces the summaries a companion app
would plot.  Nothing safety-critical lives here, and per the paper's
architecture the sink is *not* assumed secure -- it receives verdicts but
plays no role in producing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.wiot.basestation import WindowVerdict

__all__ = ["Sink"]


@dataclass
class Sink:
    """Historical storage plus simple analytics."""

    verdict_history: list["WindowVerdict"] = field(default_factory=list)

    def store_verdict(self, verdict: "WindowVerdict") -> None:
        """Persist one verdict in the history."""
        self.verdict_history.append(verdict)

    @property
    def n_stored(self) -> int:
        return len(self.verdict_history)

    @property
    def alert_fraction(self) -> float:
        if not self.verdict_history:
            return 0.0
        return sum(1 for v in self.verdict_history if v.altered) / len(
            self.verdict_history
        )

    def alerts_between(self, start_s: float, stop_s: float) -> list["WindowVerdict"]:
        """Alert verdicts within a time range (visualization query)."""
        if stop_s < start_s:
            raise ValueError("stop_s must be >= start_s")
        return [
            v
            for v in self.verdict_history
            if v.altered and start_s <= v.time_s < stop_s
        ]

    def first_alert_time(self) -> float | None:
        """Detection latency query: when did the first alert fire?"""
        for verdict in self.verdict_history:
            if verdict.altered:
                return verdict.time_s
        return None
