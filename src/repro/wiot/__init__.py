"""The wearable IoT environment (paper Fig. 1).

Sensors form a wireless network around the user and forward measurements
to an always-present, safety-critical *base station* (the Amulet), which
acts on the data and forwards it to a resource-rich *sink* (phone/tablet)
for storage and visualization.  This subpackage wires those three tiers
together around the signal substrate and the Amulet simulator:

- :mod:`~repro.wiot.sensor` -- ECG/ABP body sensors (optionally
  compromised at the source);
- :mod:`~repro.wiot.channel` -- the lossy wireless hop;
- :mod:`~repro.wiot.assembly` -- bounded-memory window assembly
  (stale-half eviction, ring-buffer dedup) shared with the gateway;
- :mod:`~repro.wiot.basestation` -- window assembly + the SIFT detector
  on the simulated Amulet;
- :mod:`~repro.wiot.sink` -- historical storage and summaries;
- :mod:`~repro.wiot.environment` -- end-to-end orchestration.
"""

from repro.wiot.assembly import BoundedDedup, WindowAssembler
from repro.wiot.basestation import BaseStation
from repro.wiot.channel import WirelessChannel
from repro.wiot.environment import WIoTEnvironment, WIoTRunSummary
from repro.wiot.secure_channel import (
    AuthenticatedPacket,
    PacketAuthenticator,
    PacketVerifier,
)
from repro.wiot.sensor import BodySensor, CompromisedSensor, SensorPacket
from repro.wiot.sink import Sink

__all__ = [
    "AuthenticatedPacket",
    "BaseStation",
    "BodySensor",
    "BoundedDedup",
    "CompromisedSensor",
    "PacketAuthenticator",
    "PacketVerifier",
    "SensorPacket",
    "Sink",
    "WIoTEnvironment",
    "WIoTRunSummary",
    "WindowAssembler",
    "WirelessChannel",
]
