"""Body sensors.

A :class:`BodySensor` chops one channel of a recording into fixed-size
packets, each carrying the samples and the channel's characteristic-point
indexes (R peaks for ECG, systolic peaks for ABP) -- the payload the
paper's base station expects.  :class:`CompromisedSensor` wraps a sensor
and applies a sensor-hijacking attack *at the source*, modelling the four
compromise avenues of the paper's threat model (channel, firmware,
sensory channel, physical).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.signals.dataset import Record, SignalWindow
from repro.signals.peaks import peak_indices_in_window

__all__ = ["BodySensor", "CompromisedSensor", "SensorPacket"]


@dataclass(frozen=True)
class SensorPacket:
    """One transmission from a sensor to the base station."""

    sensor_id: str
    channel: str  # "ecg" | "abp"
    sequence: int
    start_time_s: float
    samples: np.ndarray
    peak_indexes: np.ndarray
    sample_rate: float

    def __post_init__(self) -> None:
        if self.channel not in ("ecg", "abp"):
            raise ValueError(f"unknown channel: {self.channel!r}")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    @property
    def duration_s(self) -> float:
        return self.samples.size / self.sample_rate

    def payload_crc32(self) -> int:
        """Checksum over the payload an integrity layer must protect.

        Covers the samples, the peak indexes and the routing header
        (channel + sequence), so in-flight bit flips in any of them are
        detectable by the receiver.
        """
        crc = zlib.crc32(f"{self.channel}:{self.sequence}".encode())
        crc = zlib.crc32(np.ascontiguousarray(self.samples).tobytes(), crc)
        peaks = np.ascontiguousarray(self.peak_indexes, dtype=np.int64)
        return zlib.crc32(peaks.tobytes(), crc)


class BodySensor:
    """A wearable sensor streaming one channel of a recording.

    Parameters
    ----------
    sensor_id:
        Unique device identifier.
    channel:
        ``"ecg"`` or ``"abp"``.
    record:
        The measured physiology this sensor observes.
    packet_s:
        Packetization interval; the detector's window size (3 s).
    """

    def __init__(
        self, sensor_id: str, channel: str, record: Record, packet_s: float = 3.0
    ) -> None:
        if channel not in ("ecg", "abp"):
            raise ValueError(f"unknown channel: {channel!r}")
        if packet_s <= 0:
            raise ValueError("packet_s must be positive")
        self.sensor_id = sensor_id
        self.channel = channel
        self.record = record
        self.packet_s = float(packet_s)

    @property
    def n_packets(self) -> int:
        length = int(round(self.packet_s * self.record.sample_rate))
        return self.record.n_samples // length

    def packets(self) -> Iterator[SensorPacket]:
        """Yield the recording as a sequence of packets."""
        length = int(round(self.packet_s * self.record.sample_rate))
        peaks = (
            self.record.r_peaks if self.channel == "ecg" else self.record.systolic_peaks
        )
        samples = (
            self.record.ecg if self.channel == "ecg" else self.record.abp
        )
        for sequence in range(self.n_packets):
            start = sequence * length
            yield SensorPacket(
                sensor_id=self.sensor_id,
                channel=self.channel,
                sequence=sequence,
                start_time_s=start / self.record.sample_rate,
                samples=samples[start : start + length],
                peak_indexes=peak_indices_in_window(peaks, start, start + length),
                sample_rate=self.record.sample_rate,
            )


class CompromisedSensor:
    """A hijacked sensor: packets are altered before transmission.

    Parameters
    ----------
    sensor:
        The underlying (ECG) sensor.
    attack:
        The hijacking behaviour.
    active_after_s:
        Stream time at which the compromise activates (a firmware
        implant lying dormant, or the instant of channel takeover).
    abp_record:
        The victim's genuine recording, used only to give the attack
        implementation a well-formed window to rewrite.
    """

    def __init__(
        self,
        sensor: BodySensor,
        attack: SensorHijackingAttack,
        abp_record: Record,
        active_after_s: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if sensor.channel != "ecg":
            raise ValueError(
                "the paper's threat model hijacks the ECG sensor; ABP is trusted"
            )
        self.sensor = sensor
        self.attack = attack
        self.abp_record = abp_record
        self.active_after_s = float(active_after_s)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def sensor_id(self) -> str:
        return self.sensor.sensor_id

    @property
    def channel(self) -> str:
        return self.sensor.channel

    @property
    def n_packets(self) -> int:
        return self.sensor.n_packets

    def packets(self) -> Iterator[SensorPacket]:
        """Yield packets, altered once the compromise activates."""
        length = int(round(self.sensor.packet_s * self.sensor.record.sample_rate))
        for packet in self.sensor.packets():
            if packet.start_time_s < self.active_after_s:
                yield packet
                continue
            start = packet.sequence * length
            window = SignalWindow(
                ecg=packet.samples,
                abp=self.abp_record.abp[start : start + length],
                r_peaks=packet.peak_indexes,
                systolic_peaks=peak_indices_in_window(
                    self.abp_record.systolic_peaks, start, start + length
                ),
                sample_rate=packet.sample_rate,
                subject_id=self.sensor.record.subject_id,
                altered=False,
            )
            altered = self.attack.alter(window, self.rng)
            yield SensorPacket(
                sensor_id=packet.sensor_id,
                channel=packet.channel,
                sequence=packet.sequence,
                start_time_s=packet.start_time_s,
                samples=altered.ecg,
                peak_indexes=altered.r_peaks,
                sample_rate=packet.sample_rate,
            )
