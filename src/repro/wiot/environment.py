"""End-to-end WIoT orchestration (paper Fig. 1).

``WIoTEnvironment.run`` streams a subject's recording through the ECG and
ABP sensors, across the lossy wireless channel, into the base station's
Amulet-hosted detector, and down to the sink -- optionally with the ECG
sensor compromised partway through.  The returned summary carries
everything an experiment needs: verdicts, ground truth, loss statistics
and detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.core.detector import SIFTDetector
from repro.ml.metrics import DetectionReport, score_predictions
from repro.signals.dataset import Record
from repro.wiot.basestation import BaseStation
from repro.wiot.channel import WirelessChannel
from repro.wiot.sensor import BodySensor, CompromisedSensor
from repro.wiot.sink import Sink

__all__ = ["WIoTEnvironment", "WIoTRunSummary"]


@dataclass(frozen=True)
class WIoTRunSummary:
    """Outcome of one environment run."""

    n_windows_sent: int
    n_windows_classified: int
    n_windows_lost: int
    alert_count: int
    first_alert_time_s: float | None
    attack_active_after_s: float | None
    channel_delivery_rate: float
    report: DetectionReport | None

    @property
    def detection_latency_s(self) -> float | None:
        """Time from attack activation to the first alert, if both exist."""
        if self.attack_active_after_s is None or self.first_alert_time_s is None:
            return None
        return max(0.0, self.first_alert_time_s - self.attack_active_after_s)


class WIoTEnvironment:
    """A complete sensor -> base station -> sink deployment.

    Parameters
    ----------
    detector:
        Fitted reference detector to deploy on the base station.
    channel:
        Wireless model shared by both sensors (defaults to lossless).
    """

    def __init__(
        self, detector: SIFTDetector, channel: WirelessChannel | None = None
    ) -> None:
        self.detector = detector
        self.channel = channel or WirelessChannel()
        self.sink = Sink()
        self.base_station = BaseStation(detector, sink=self.sink)

    def run(
        self,
        record: Record,
        attack: SensorHijackingAttack | None = None,
        attack_after_s: float = 0.0,
        rng: np.random.Generator | None = None,
        window_s: float = 3.0,
    ) -> WIoTRunSummary:
        """Stream one recording through the environment.

        Parameters
        ----------
        record:
            The subject's genuine physiology.
        attack:
            Optional ECG-sensor compromise; ``None`` runs a benign session.
        attack_after_s:
            Stream time at which the compromise activates.
        rng:
            Randomness for the attack; defaults to a fixed seed.
        window_s:
            Packetization / detection window size.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        ecg_sensor: BodySensor | CompromisedSensor = BodySensor(
            "ecg-0", "ecg", record, packet_s=window_s
        )
        abp_sensor = BodySensor("abp-0", "abp", record, packet_s=window_s)
        if attack is not None:
            ecg_sensor = CompromisedSensor(
                ecg_sensor,
                attack,
                abp_record=record,
                active_after_s=attack_after_s,
                rng=rng,
            )

        truth: dict[int, bool] = {}
        n_sent = 0
        for ecg_packet, abp_packet in zip(ecg_sensor.packets(), abp_sensor.packets()):
            n_sent += 1
            truth[ecg_packet.sequence] = (
                attack is not None and ecg_packet.start_time_s >= attack_after_s
            )
            self.base_station.receive(self.channel.transmit(ecg_packet))
            self.base_station.receive(self.channel.transmit(abp_packet))
        lost = self.base_station.flush_incomplete()

        verdicts = self.base_station.verdicts
        report = None
        if verdicts:
            predicted = np.array([v.altered for v in verdicts])
            actual = np.array([truth[v.sequence] for v in verdicts])
            report = score_predictions(predicted, actual)
        return WIoTRunSummary(
            n_windows_sent=n_sent,
            n_windows_classified=len(verdicts),
            n_windows_lost=lost,
            alert_count=self.base_station.alert_count,
            first_alert_time_s=self.sink.first_alert_time(),
            attack_active_after_s=attack_after_s if attack is not None else None,
            channel_delivery_rate=self.channel.delivery_rate,
            report=report,
        )
