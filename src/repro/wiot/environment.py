"""End-to-end WIoT orchestration (paper Fig. 1).

``WIoTEnvironment.run`` streams a subject's recording through the ECG and
ABP sensors, across the lossy wireless channel, into the base station's
Amulet-hosted detector, and down to the sink -- optionally with the ECG
sensor compromised partway through, a fault stack rewriting the sensor
packets, and an SQI gate abstaining on unusable windows.  The returned
summary carries everything an experiment needs: verdicts, ground truth,
loss/abstain statistics and detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.core.detector import SIFTDetector
from repro.ml.metrics import DetectionReport, score_predictions
from repro.signals.dataset import Record
from repro.signals.quality import SignalQualityIndex
from repro.wiot.basestation import BaseStation
from repro.wiot.channel import WirelessChannel
from repro.wiot.sensor import BodySensor, CompromisedSensor
from repro.wiot.sink import Sink

if TYPE_CHECKING:
    from repro.faults.base import FaultInjector

__all__ = ["WIoTEnvironment", "WIoTRunSummary"]


@dataclass(frozen=True)
class WIoTRunSummary:
    """Outcome of one environment run.

    ``n_windows_classified`` counts windows the detector actually decided;
    abstained windows are reported separately (they reached the detector
    but the quality gate withheld judgement).  Coverage therefore is
    ``n_windows_classified / n_windows_sent`` and the abstain rate
    ``n_windows_abstained / n_windows_sent`` -- both forms of coverage
    loss, never silently dropped.
    """

    n_windows_sent: int
    n_windows_classified: int
    n_windows_lost: int
    alert_count: int
    first_alert_time_s: float | None
    attack_active_after_s: float | None
    channel_delivery_rate: float
    report: DetectionReport | None
    n_windows_abstained: int = 0
    n_packets_corrupted: int = 0
    n_packets_duplicated: int = 0

    @property
    def detection_latency_s(self) -> float | None:
        """Time from attack activation to the first alert, if both exist."""
        if self.attack_active_after_s is None or self.first_alert_time_s is None:
            return None
        return max(0.0, self.first_alert_time_s - self.attack_active_after_s)

    @property
    def coverage(self) -> float:
        """Fraction of sent windows that received a real decision."""
        if self.n_windows_sent == 0:
            return 1.0
        return self.n_windows_classified / self.n_windows_sent

    @property
    def abstain_rate(self) -> float:
        """Fraction of sent windows the quality gate abstained on."""
        if self.n_windows_sent == 0:
            return 0.0
        return self.n_windows_abstained / self.n_windows_sent


class WIoTEnvironment:
    """A complete sensor -> base station -> sink deployment.

    Parameters
    ----------
    detector:
        Fitted reference detector to deploy on the base station.
    channel:
        Wireless model shared by both sensors (defaults to lossless).
        Accepts anything with ``transmit(packet)`` (one delivery or
        ``None``) or ``deliver(packet)`` (a list of deliveries, e.g.
        :class:`repro.faults.FaultyChannel` with duplication/reordering).
    quality_gate:
        Optional SQI gate forwarded to the base station; low-quality
        windows yield abstain verdicts instead of classifications.
    """

    def __init__(
        self,
        detector: SIFTDetector,
        channel: WirelessChannel | None = None,
        quality_gate: SignalQualityIndex | None = None,
    ) -> None:
        self.detector = detector
        self.channel = channel if channel is not None else WirelessChannel()
        self.sink = Sink()
        self.base_station = BaseStation(
            detector, sink=self.sink, quality_gate=quality_gate
        )

    def _deliveries(self, packet) -> list:
        """Normalize single- and multi-delivery channels to a list."""
        if hasattr(self.channel, "deliver"):
            return self.channel.deliver(packet)
        delivered = self.channel.transmit(packet)
        return [] if delivered is None else [delivered]

    def run(
        self,
        record: Record,
        attack: SensorHijackingAttack | None = None,
        attack_after_s: float = 0.0,
        rng: np.random.Generator | None = None,
        window_s: float = 3.0,
        sensor_faults: "FaultInjector | None" = None,
    ) -> WIoTRunSummary:
        """Stream one recording through the environment.

        Parameters
        ----------
        record:
            The subject's genuine physiology.
        attack:
            Optional ECG-sensor compromise; ``None`` runs a benign session.
        attack_after_s:
            Stream time at which the compromise activates.
        rng:
            Randomness for the attack; defaults to a fixed seed.
        window_s:
            Packetization / detection window size.
        sensor_faults:
            Optional fault stack applied to every sensor packet before
            transmission (both channels share the injector, so drift
            faults can desynchronize them).
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        ecg_sensor: BodySensor | CompromisedSensor = BodySensor(
            "ecg-0", "ecg", record, packet_s=window_s
        )
        abp_sensor = BodySensor("abp-0", "abp", record, packet_s=window_s)
        if attack is not None:
            ecg_sensor = CompromisedSensor(
                ecg_sensor,
                attack,
                abp_record=record,
                active_after_s=attack_after_s,
                rng=rng,
            )

        truth: dict[int, bool] = {}
        n_sent = 0
        ecg_packets = ecg_sensor.packets()
        abp_packets = abp_sensor.packets()
        if sensor_faults is not None:
            ecg_packets = sensor_faults.stream(ecg_packets)
            abp_packets = sensor_faults.stream(abp_packets)
        for ecg_packet, abp_packet in zip(ecg_packets, abp_packets):
            n_sent += 1
            truth[ecg_packet.sequence] = (
                attack is not None and ecg_packet.start_time_s >= attack_after_s
            )
            for delivered in self._deliveries(ecg_packet):
                self.base_station.receive(delivered)
            for delivered in self._deliveries(abp_packet):
                self.base_station.receive(delivered)
        if hasattr(self.channel, "drain"):
            for delivered in self.channel.drain():
                self.base_station.receive(delivered)
        self.base_station.flush_incomplete()

        verdicts = self.base_station.verdicts
        decided = self.base_station.decided_verdicts
        # A window is lost when it never produced a verdict, whatever the
        # avenue: a half dropped by the channel, both halves dropped, or
        # packets rejected at the door (CRC mismatch).  Counting pending
        # slots alone would miss the latter two.
        lost = n_sent - len(verdicts)
        report = None
        if decided:
            predicted = np.array([v.altered for v in decided])
            actual = np.array([truth[v.sequence] for v in decided])
            report = score_predictions(predicted, actual)
        return WIoTRunSummary(
            n_windows_sent=n_sent,
            n_windows_classified=len(decided),
            n_windows_lost=lost,
            alert_count=self.base_station.alert_count,
            first_alert_time_s=self.sink.first_alert_time(),
            attack_active_after_s=attack_after_s if attack is not None else None,
            channel_delivery_rate=self.channel.delivery_rate,
            report=report,
            n_windows_abstained=len(verdicts) - len(decided),
            n_packets_corrupted=self.base_station.corrupted_packets,
            n_packets_duplicated=self.base_station.duplicate_packets,
        )
