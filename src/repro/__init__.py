"""repro: a full reproduction of "Deploying Data-Driven Security Solutions
on Resource-Constrained Wearable IoT Systems" (Cai, Yun, Hester,
Venkatasubramanian -- ICDCS 2017).

The package implements the paper's contribution and every substrate it
depends on:

- :mod:`repro.core` -- SIFT, the ECG sensor-hijacking detector (portraits,
  the three feature-set versions, per-user SVM training, alerts);
- :mod:`repro.signals` -- a synthetic cardiac-process substrate standing in
  for the PhysioBank Fantasia records (coupled ECG + ABP generation,
  peak detection, the 12-subject cohort);
- :mod:`repro.attacks` -- sensor-hijacking attack models and the paper's
  evaluation scenario;
- :mod:`repro.ml` -- from-scratch SVM (SMO), baselines, metrics, and
  fixed-point model export;
- :mod:`repro.amulet` -- the Amulet platform simulator (MSP430 model, QM
  state machines, AmuletOS, firmware toolchain, resource profiler);
- :mod:`repro.sift_app` -- the detector as a three-state Amulet app;
- :mod:`repro.wiot` -- the sensors -> base station -> sink environment;
- :mod:`repro.adaptive` -- the adaptive-security decision engine
  (paper Insight #4, implemented);
- :mod:`repro.experiments` -- harnesses regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro.signals import SyntheticFantasia
    from repro.attacks import AttackScenario, ReplacementAttack
    from repro.core import SIFTDetector

    data = SyntheticFantasia()
    victim, *others = data.subjects
    detector = SIFTDetector(version="simplified")
    detector.fit(
        data.training_record(victim),
        [data.record(s, 120.0) for s in others[:3]],
    )
    stream = AttackScenario(
        ReplacementAttack([data.record(others[3], 120.0, "test")])
    ).build(data.test_record(victim), np.random.default_rng(0))
    print(detector.evaluate(stream))
"""

from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion

__version__ = "1.0.0"

__all__ = ["DetectorVersion", "SIFTDetector", "__version__"]
