"""ARP-view: the Amulet Resource Profiler's developer-facing front end.

"ARP-view presents developers a graphical view of the resource profile and
sliders that allow them to see the battery-life impact when they adjust
application parameters."  This module renders that view as text: the
memory map, the energy breakdown, the battery-life sliders, and a
side-by-side comparison of several builds -- the artifact the paper's
Fig. 3 is a screenshot of.
"""

from __future__ import annotations

from repro.amulet.firmware import FirmwareImage
from repro.amulet.profiler import ResourceProfile

__all__ = ["render_comparison", "render_memory_map", "render_profile"]


def _bar(value: float, peak: float, width: int = 32) -> str:
    filled = 0 if peak <= 0 else int(round(width * value / peak))
    return "#" * filled


def render_memory_map(image: FirmwareImage) -> str:
    """The firmware layout: every segment with its footprint."""
    rows = image.memory_map()
    peak = max(size for _, _, size in rows)
    name_width = max(len(name) for name, _, _ in rows)
    lines = ["FRAM layout (MSP430FR5989, 128 KB):"]
    for name, kind, size in rows:
        lines.append(
            f"  {name.ljust(name_width)} {kind:6s} "
            f"{size / 1024.0:7.2f} KB |{_bar(size, peak)}"
        )
    used = image.total_fram_bytes / 1024.0
    capacity = image.hardware.mcu.fram_bytes / 1024.0
    lines.append(
        f"  total: {used:.2f} / {capacity:.0f} KB "
        f"({100 * used / capacity:.1f} % used)"
    )
    lines.append(
        f"SRAM peak: {image.total_sram_bytes} / "
        f"{image.hardware.mcu.sram_bytes} B"
    )
    return "\n".join(lines)


def render_profile(
    profile: ResourceProfile,
    slider_periods: tuple[float, ...] = (1.5, 3.0, 6.0, 12.0, 30.0),
) -> str:
    """One app's full ARP-view pane: energy breakdown plus sliders."""
    breakdown = sorted(
        profile.current_breakdown.items(), key=lambda item: item[1], reverse=True
    )
    peak = breakdown[0][1] if breakdown else 0.0
    label_width = max(len(label) for label, _ in breakdown)
    lines = [
        f"Resource profile: {profile.app_name}",
        f"  memory: {profile.system_fram_kb:.2f} KB system + "
        f"{profile.app_fram_kb:.2f} KB app FRAM; "
        f"{profile.system_sram_bytes} + {profile.app_sram_bytes} B SRAM",
        f"  compute: {profile.cycles_per_event / 1e6:.3f} M cycles per event"
        f" (one event / {profile.period_s:g} s)",
        "",
        "  average current breakdown:",
    ]
    for label, current in breakdown:
        lines.append(
            f"    {label.ljust(label_width)} {1000 * current:8.2f} uA "
            f"|{_bar(current, peak)}"
        )
    lines.append(
        f"    {'TOTAL'.ljust(label_width)} "
        f"{1000 * profile.average_current_ma:8.2f} uA"
    )
    lines.append("")
    lines.append("  battery-life slider (detection period):")
    for period in slider_periods:
        projected = profile.with_period(period)
        marker = " <- current" if period == profile.period_s else ""
        lines.append(
            f"    {period:5.1f} s -> {projected.lifetime_days:6.1f} days"
            f"{marker}"
        )
    return "\n".join(lines)


def render_comparison(profiles: dict[str, ResourceProfile]) -> str:
    """Side-by-side build comparison (the adaptive engine's input)."""
    if not profiles:
        return "(no profiles)"
    headers = ["metric", *profiles.keys()]
    rows = [
        [
            "app FRAM (KB)",
            *(f"{p.app_fram_kb:.2f}" for p in profiles.values()),
        ],
        [
            "system FRAM (KB)",
            *(f"{p.system_fram_kb:.2f}" for p in profiles.values()),
        ],
        [
            "app SRAM (B)",
            *(str(p.app_sram_bytes) for p in profiles.values()),
        ],
        [
            "Mcycles/event",
            *(f"{p.cycles_per_event / 1e6:.3f}" for p in profiles.values()),
        ],
        [
            "avg current (uA)",
            *(f"{1000 * p.average_current_ma:.1f}" for p in profiles.values()),
        ],
        [
            "lifetime (days)",
            *(f"{p.lifetime_days:.1f}" for p in profiles.values()),
        ],
    ]
    widths = [
        max(len(str(row[i])) for row in [headers, *rows])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(str(cell).ljust(width) for cell, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
