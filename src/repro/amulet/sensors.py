"""The Amulet's internal sensors.

The prototype "is equipped with internal sensors for use by developers: an
Analog Devices ADMP510 microphone, an Avago Tech APDS-9008 light sensor, a
TI TMP20 temperature sensor, an STMicroelectronics L3GD20H gyroscope and
an AD ADXL362 accelerometer."  These models generate plausible sample
batches for the companion apps that share the device with the SIFT
detector (the Amulet's multi-app support is one of the paper's four
reasons for choosing it as the base station).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Accelerometer",
    "InternalSensor",
    "LightSensor",
    "SensorBatch",
    "TemperatureSensor",
]


@dataclass(frozen=True)
class SensorBatch:
    """One batch of samples from an internal sensor."""

    sensor: str
    start_time_s: float
    sample_rate: float
    samples: np.ndarray  # shape (n,) or (n, n_axes)

    @property
    def duration_s(self) -> float:
        return self.samples.shape[0] / self.sample_rate


class InternalSensor(abc.ABC):
    """An on-board sensor producing fixed-rate sample batches."""

    name: str = "sensor"
    sample_rate: float = 50.0

    @abc.abstractmethod
    def sample(
        self, start_time_s: float, duration_s: float, rng: np.random.Generator
    ) -> SensorBatch:
        """Generate one batch covering ``duration_s`` seconds."""

    def _batch(self, start_time_s: float, samples: np.ndarray) -> SensorBatch:
        return SensorBatch(
            sensor=self.name,
            start_time_s=start_time_s,
            sample_rate=self.sample_rate,
            samples=samples,
        )


class Accelerometer(InternalSensor):
    """ADXL362 model: 3-axis acceleration with gait impulses.

    While the wearer walks, each step adds a damped impulse on top of
    gravity plus sensor noise -- enough structure for a step-counting
    companion app.

    Parameters
    ----------
    cadence_hz:
        Steps per second while walking (0 models standing still).
    step_amplitude_g:
        Peak acceleration of a step impulse.
    """

    name = "accelerometer"
    sample_rate = 50.0

    def __init__(self, cadence_hz: float = 1.8, step_amplitude_g: float = 0.45) -> None:
        if cadence_hz < 0:
            raise ValueError("cadence_hz must be non-negative")
        if step_amplitude_g < 0:
            raise ValueError("step_amplitude_g must be non-negative")
        self.cadence_hz = float(cadence_hz)
        self.step_amplitude_g = float(step_amplitude_g)

    def sample(
        self, start_time_s: float, duration_s: float, rng: np.random.Generator
    ) -> SensorBatch:
        n = int(round(duration_s * self.sample_rate))
        t = np.arange(n) / self.sample_rate
        samples = np.zeros((n, 3))
        samples[:, 2] = 1.0  # gravity on z
        samples += 0.02 * rng.standard_normal((n, 3))
        if self.cadence_hz > 0:
            phase = rng.uniform(0.0, 1.0 / self.cadence_hz)
            step_times = np.arange(phase, duration_s, 1.0 / self.cadence_hz)
            for step_time in step_times:
                # Synthesizes the physical acceleration waveform the ADXL362
                # digitizes -- nature's side of the simulation, not app code.
                impulse = self.step_amplitude_g * np.exp(  # lint: allow DEV001 -- physical stimulus model, runs host-side
                    -((t - step_time) ** 2) / (2 * 0.03**2)
                )
                samples[:, 2] += impulse
                samples[:, 0] += 0.4 * impulse * rng.uniform(0.5, 1.0)
        return self._batch(start_time_s, samples)

    def expected_steps(self, duration_s: float) -> int:
        """Ground-truth step count for a walking duration."""
        return int(self.cadence_hz * duration_s)


class LightSensor(InternalSensor):
    """APDS-9008 model: slowly varying ambient light in lux."""

    name = "light"
    sample_rate = 2.0

    def __init__(self, mean_lux: float = 300.0) -> None:
        if mean_lux < 0:
            raise ValueError("mean_lux must be non-negative")
        self.mean_lux = float(mean_lux)

    def sample(
        self, start_time_s: float, duration_s: float, rng: np.random.Generator
    ) -> SensorBatch:
        n = max(1, int(round(duration_s * self.sample_rate)))
        drift = np.cumsum(rng.standard_normal(n)) * 2.0
        samples = np.maximum(self.mean_lux + drift, 0.0)
        return self._batch(start_time_s, samples)


class TemperatureSensor(InternalSensor):
    """TMP20 model: skin temperature around 33 C with slow drift."""

    name = "temperature"
    sample_rate = 1.0

    def __init__(self, mean_c: float = 33.0) -> None:
        self.mean_c = float(mean_c)

    def sample(
        self, start_time_s: float, duration_s: float, rng: np.random.Generator
    ) -> SensorBatch:
        n = max(1, int(round(duration_s * self.sample_rate)))
        # Physical skin-temperature process the TMP20 samples, not app code.
        samples = self.mean_c + 0.05 * np.cumsum(rng.standard_normal(n)) / np.sqrt(  # lint: allow DEV001 -- physical stimulus model, runs host-side
            np.arange(1, n + 1)
        )
        return self._batch(start_time_s, samples)
