"""Battery model and lifetime projection.

Table III's "Expected Lifetime" column is ARP's projection of how long the
110 mAh cell sustains the measured average current.  The model includes a
usable-capacity derating and monthly self-discharge, both standard for
small lithium cells.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Battery"]

_HOURS_PER_DAY = 24.0
_HOURS_PER_MONTH = 30.0 * _HOURS_PER_DAY


@dataclass(frozen=True)
class Battery:
    """A small lithium cell.

    Parameters
    ----------
    capacity_mah:
        Nameplate capacity; the Amulet prototype carries 110 mAh.
    usable_fraction:
        Fraction of nameplate capacity deliverable before brown-out.
    self_discharge_per_month:
        Fractional capacity lost per month independent of the load.
    """

    capacity_mah: float = 110.0
    usable_fraction: float = 0.9
    self_discharge_per_month: float = 0.02

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError("capacity_mah must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable_fraction must be in (0, 1]")
        if not 0 <= self.self_discharge_per_month < 1:
            raise ValueError("self_discharge_per_month must be in [0, 1)")

    @property
    def usable_mah(self) -> float:
        return self.capacity_mah * self.usable_fraction

    @property
    def self_discharge_current_ma(self) -> float:
        """Self-discharge expressed as an equivalent constant current."""
        return (
            self.capacity_mah * self.self_discharge_per_month / _HOURS_PER_MONTH
        )

    def lifetime_hours(self, average_current_ma: float) -> float:
        """Hours until the usable capacity is exhausted at a given load."""
        if average_current_ma < 0:
            raise ValueError("average_current_ma must be non-negative")
        total = average_current_ma + self.self_discharge_current_ma
        if total <= 0:
            return float("inf")
        return self.usable_mah / total

    def lifetime_days(self, average_current_ma: float) -> float:
        """Days until the usable capacity is exhausted at a given load."""
        return self.lifetime_hours(average_current_ma) / _HOURS_PER_DAY

    def state_of_charge_after(
        self, average_current_ma: float, hours: float
    ) -> float:
        """Remaining charge fraction after running a load for some hours."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        drained = (average_current_ma + self.self_discharge_current_ma) * hours
        return max(0.0, 1.0 - drained / self.usable_mah)
