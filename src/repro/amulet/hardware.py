"""Hardware model of the Amulet wearable prototype.

The prototype (paper, Section II-B) is built around a Texas Instruments
MSP430FR5989 micro-controller -- 2 KB of SRAM and 128 KB of integrated
FRAM -- plus a battery, haptic buzzer, display, BLE radio and a set of
internal sensors.  This module captures the numbers the resource profiler
needs: memory capacities, clock rate, and per-component current draws.

Current figures are representative values assembled from the parts'
datasheets (MSP430FR5989, Sharp memory-in-pixel LCD, nRF51-class BLE) --
the same style of "parameterized model" the Amulet Resource Profiler
builds.  Absolute lifetimes depend on them; the Original/Simplified/
Reduced *ratios* in Table III depend only on the measured cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MSP430FR5989", "AmuletHardware", "Peripheral"]


@dataclass(frozen=True)
class MSP430FR5989:
    """The application micro-controller."""

    sram_bytes: int = 2 * 1024
    fram_bytes: int = 128 * 1024
    clock_hz: float = 8_000_000.0
    #: Active-mode current at the configured clock (datasheet ~100-130
    #: uA/MHz executing from FRAM).
    active_current_ma: float = 0.9
    #: LPM3 sleep current with RTC running.
    sleep_current_ma: float = 0.0007

    def cycles_to_seconds(self, cycles: int) -> float:
        """Wall-clock seconds to execute a cycle count at this clock."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles / self.clock_hz

    def active_charge_mah(self, cycles: int) -> float:
        """Charge consumed executing ``cycles`` in active mode, in mAh."""
        return self.active_current_ma * self.cycles_to_seconds(cycles) / 3600.0


@dataclass(frozen=True)
class Peripheral:
    """A peripheral with a static draw and per-use energy cost.

    Attributes
    ----------
    name:
        Peripheral identifier.
    static_current_ma:
        Always-on current while the peripheral is enabled.
    event_charge_mah:
        Charge per discrete use (one display refresh, one BLE packet
        reception, one buzz).
    """

    name: str
    static_current_ma: float = 0.0
    event_charge_mah: float = 0.0

    def __post_init__(self) -> None:
        if self.static_current_ma < 0 or self.event_charge_mah < 0:
            raise ValueError("peripheral currents must be non-negative")


def _default_peripherals() -> dict[str, Peripheral]:
    return {
        # Sharp memory LCD: tiny static draw, ~0.05 mA for ~30 ms per
        # line update -> ~4e-7 mAh per refresh.
        "display": Peripheral("display", static_current_ma=0.004, event_charge_mah=4.0e-7),
        # BLE reception of one 3 s ECG+ABP snippet (a burst of packets
        # carrying two 1080-sample float arrays plus peak indexes).
        "ble_radio": Peripheral("ble_radio", static_current_ma=0.006, event_charge_mah=3.4e-5),
        # Haptic buzzer burst on alert.
        "haptic": Peripheral("haptic", static_current_ma=0.0, event_charge_mah=8.0e-6),
        # Internal sensor rail (accelerometer, gyro idle, light, temp).
        "sensors": Peripheral("sensors", static_current_ma=0.020, event_charge_mah=0.0),
    }


@dataclass(frozen=True)
class AmuletHardware:
    """The complete wearable: MCU, peripherals and battery capacity."""

    mcu: MSP430FR5989 = field(default_factory=MSP430FR5989)
    peripherals: dict[str, Peripheral] = field(default_factory=_default_peripherals)
    battery_capacity_mah: float = 110.0  # the paper's 110 mAh cell

    def peripheral(self, name: str) -> Peripheral:
        """Look up a peripheral by name (KeyError if unknown)."""
        try:
            return self.peripherals[name]
        except KeyError:
            raise KeyError(
                f"unknown peripheral {name!r}; available: "
                f"{sorted(self.peripherals)}"
            ) from None

    @property
    def baseline_current_ma(self) -> float:
        """System floor: MCU sleep plus all static peripheral draws."""
        return self.mcu.sleep_current_ma + sum(
            p.static_current_ma for p in self.peripherals.values()
        )
