"""The QM event-driven programming framework.

AmuletOS is implemented on top of the QM framework (paper, Section II-B):
each application is a state machine with memory, there are no processes or
threads, and "all application code runs to completion without
context-switching overhead".  This module models that programming style:

* an :class:`Event` is a named signal with an optional payload;
* a :class:`State` maps signals to handlers; a handler may return the name
  of the next state to transition to;
* a :class:`StateMachine` dispatches one event at a time, running entry
  actions and chained transitions to completion before returning;
* a :class:`QMApp` couples a state machine with the resource declarations
  (code inventory, static data, SRAM peak, libm use) that the firmware
  toolchain and the resource profiler consume.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Event", "QMApp", "State", "StateMachine"]

#: Upper bound on chained transitions per dispatch; exceeding it indicates
#: a transition cycle, which the run-to-completion model cannot allow.
_MAX_CHAINED_TRANSITIONS = 16


@dataclass(frozen=True)
class Event:
    """A QM event: a signal name plus an arbitrary payload."""

    signal: str
    payload: Any = None

    def __post_init__(self) -> None:
        if not self.signal:
            raise ValueError("event signal must be a non-empty string")


#: An event handler receives (app, event) and may return the next state's
#: name, or None to remain in the current state.
Handler = Callable[["QMApp", Event], str | None]
#: An entry action receives the app and may return a follow-up transition.
EntryAction = Callable[["QMApp"], str | None]


class State:
    """One state of a QM state machine."""

    def __init__(self, name: str, on_entry: EntryAction | None = None) -> None:
        if not name:
            raise ValueError("state name must be non-empty")
        self.name = name
        self.on_entry = on_entry
        self._handlers: dict[str, Handler] = {}

    def on(self, signal: str, handler: Handler) -> "State":
        """Register a handler for a signal; returns self for chaining."""
        if signal in self._handlers:
            raise ValueError(
                f"state {self.name!r} already handles signal {signal!r}"
            )
        self._handlers[signal] = handler
        return self

    def handler_for(self, signal: str) -> Handler | None:
        """The handler registered for a signal, or ``None``."""
        return self._handlers.get(signal)

    @property
    def signals(self) -> tuple[str, ...]:
        return tuple(self._handlers)

    def __repr__(self) -> str:
        return f"State({self.name!r}, signals={list(self._handlers)})"


class StateMachine:
    """A run-to-completion state machine.

    Parameters
    ----------
    states:
        All states of the machine.
    initial:
        Name of the initial state, entered by :meth:`start`.
    """

    def __init__(self, states: list[State], initial: str) -> None:
        if not states:
            raise ValueError("a state machine needs at least one state")
        self.states: dict[str, State] = {}
        for state in states:
            if state.name in self.states:
                raise ValueError(f"duplicate state name: {state.name!r}")
            self.states[state.name] = state
        if initial not in self.states:
            raise ValueError(f"initial state {initial!r} is not a known state")
        self.initial = initial
        self.current: State | None = None
        self.dispatch_count = 0

    def start(self, app: "QMApp") -> None:
        """Enter the initial state (running entry actions to completion)."""
        self.current = self.states[self.initial]
        self._run_entry_chain(app)

    def _transition(self, app: "QMApp", target: str) -> None:
        if target not in self.states:
            raise ValueError(f"transition to unknown state {target!r}")
        self.current = self.states[target]
        self._run_entry_chain(app)

    def _run_entry_chain(self, app: "QMApp") -> None:
        for _ in range(_MAX_CHAINED_TRANSITIONS):
            assert self.current is not None
            action = self.current.on_entry
            if action is None:
                return
            target = action(app)
            if target is None:
                return
            if target not in self.states:
                raise ValueError(f"transition to unknown state {target!r}")
            self.current = self.states[target]
        raise RuntimeError(
            "entry-action transition chain exceeded "
            f"{_MAX_CHAINED_TRANSITIONS} steps; state machine has a cycle"
        )

    def dispatch(self, app: "QMApp", event: Event) -> bool:
        """Deliver one event; returns ``True`` if the state handled it.

        The handler and any resulting transition (with entry actions) run
        to completion before this method returns -- there is no
        preemption, exactly like QM on the device.
        """
        if self.current is None:
            raise RuntimeError("state machine not started; call start() first")
        handler = self.current.handler_for(event.signal)
        if handler is None:
            return False
        self.dispatch_count += 1
        target = handler(app, event)
        if target is not None:
            self._transition(app, target)
        return True


class QMApp(abc.ABC):
    """An Amulet application: a state machine plus resource declarations.

    Subclasses build their machine in ``__init__`` and implement the
    declaration methods, which the firmware toolchain uses for static
    checks and the memory layout, and the profiler for the energy model.
    """

    def __init__(self, name: str, machine: StateMachine) -> None:
        if not name:
            raise ValueError("app name must be non-empty")
        self.name = name
        self.machine = machine
        #: Bound by AmuletOS at install time.
        self.services: Any = None

    # -- execution -------------------------------------------------------

    def start(self) -> None:
        """Enter the machine's initial state."""
        self.machine.start(self)

    def dispatch(self, event: Event) -> bool:
        """Deliver one event to this app's state machine."""
        return self.machine.dispatch(self, event)

    # -- resource declarations -------------------------------------------

    @abc.abstractmethod
    def code_inventory(self) -> dict[str, int]:
        """Map of routine name -> estimated code bytes in FRAM."""

    @abc.abstractmethod
    def static_data_bytes(self) -> dict[str, int]:
        """Map of persistent data block name -> bytes in FRAM."""

    @abc.abstractmethod
    def sram_peak_bytes(self) -> int:
        """Peak transient RAM (stack + temporaries) of any handler."""

    @abc.abstractmethod
    def uses_libm(self) -> bool:
        """Whether the build must link the C math library."""

    @property
    def code_bytes(self) -> int:
        return sum(self.code_inventory().values())

    @property
    def data_bytes(self) -> int:
        return sum(self.static_data_bytes().values())

    @property
    def fram_bytes(self) -> int:
        """Total persistent footprint: code plus static data."""
        return self.code_bytes + self.data_bytes
