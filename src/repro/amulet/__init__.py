"""Amulet platform simulator.

A behavioural model of the Amulet wearable base station (Hester et al.,
SenSys'16) detailed enough to reproduce the paper's resource results:

- :mod:`~repro.amulet.hardware` -- MSP430FR5989 micro-controller model
  (2 KB SRAM, 128 KB FRAM), peripherals and their current draws;
- :mod:`~repro.amulet.restricted` -- the restricted execution environment
  apps compute in: operation counting for the energy model, a libm gate
  (the Simplified/Reduced builds must not call ``sqrt``/``atan``/``exp``),
  and single-precision arithmetic (the paper stores signals in C ``float``
  arrays);
- :mod:`~repro.amulet.qm` -- the QM event-driven state-machine framework
  AmuletOS builds on (run-to-completion, no threads);
- :mod:`~repro.amulet.amulet_os` -- AmuletOS: app isolation, event loop,
  system services (including the string<->float conversions the authors
  had to write themselves, Insight #2);
- :mod:`~repro.amulet.firmware` -- the firmware toolchain: static checks
  (no 2-D arrays, array-size limits, libm gate) and the code/data memory
  layout;
- :mod:`~repro.amulet.profiler` -- the Amulet Resource Profiler (ARP):
  parameterized energy model and battery-lifetime projection;
- :mod:`~repro.amulet.battery`, :mod:`~repro.amulet.display` -- the
  110 mAh battery and the LED/LCD display.
"""

from repro.amulet.amulet_os import AmuletOS, OSServices
from repro.amulet.arpview import render_comparison, render_memory_map, render_profile
from repro.amulet.battery import Battery
from repro.amulet.debug import DebugTracer, DisplayRecorder
from repro.amulet.display import Display
from repro.amulet.sensors import (
    Accelerometer,
    InternalSensor,
    LightSensor,
    SensorBatch,
    TemperatureSensor,
)
from repro.amulet.firmware import (
    AppBuild,
    FirmwareImage,
    FirmwareToolchain,
    StaticCheckError,
)
from repro.amulet.flash import FlashManager, FlashOperation
from repro.amulet.hardware import MSP430FR5989, AmuletHardware, Peripheral
from repro.amulet.profiler import AmuletResourceProfiler, ResourceProfile
from repro.amulet.qm import Event, QMApp, State, StateMachine
from repro.amulet.restricted import (
    LIBM_OPERATIONS,
    CycleCostModel,
    OpCounter,
    RestrictedEnvironmentError,
    RestrictedMath,
)

__all__ = [
    "Accelerometer",
    "AmuletHardware",
    "AmuletOS",
    "AmuletResourceProfiler",
    "AppBuild",
    "Battery",
    "CycleCostModel",
    "DebugTracer",
    "Display",
    "DisplayRecorder",
    "Event",
    "FirmwareImage",
    "FirmwareToolchain",
    "FlashManager",
    "FlashOperation",
    "InternalSensor",
    "LIBM_OPERATIONS",
    "LightSensor",
    "MSP430FR5989",
    "OSServices",
    "OpCounter",
    "Peripheral",
    "QMApp",
    "ResourceProfile",
    "RestrictedEnvironmentError",
    "RestrictedMath",
    "SensorBatch",
    "State",
    "StateMachine",
    "StaticCheckError",
    "TemperatureSensor",
    "render_comparison",
    "render_memory_map",
    "render_profile",
]
