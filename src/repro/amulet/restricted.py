"""The restricted execution environment of Amulet applications.

App code on the Amulet runs on an MSP430 with no floating-point unit and,
for the Simplified/Reduced detector builds, without the C math library.
This module models those constraints for simulated app code:

* **Operation counting** -- every arithmetic primitive reports how many
  scalar operations it performed to an :class:`OpCounter`; a
  :class:`CycleCostModel` converts the counts into MSP430 CPU cycles,
  which the Amulet Resource Profiler turns into energy.
* **The libm gate** -- ``sqrt`` / ``atan2`` / ``exp`` raise
  :class:`RestrictedEnvironmentError` unless the environment was created
  with ``allow_libm=True`` (only the Original build links libm).
* **Precision** -- the Simplified and Reduced builds compute in C
  ``float`` (binary32, the type the paper's 1080-sample arrays use); the
  Original build links libm, whose routines work in ``double``, so its
  arithmetic is performed -- and billed -- at double precision.  Sub-LSB
  differences against the float64 reference pipeline are exactly the
  Amulet-vs-MATLAB gap Table II quantifies.

All vector primitives compute with numpy but charge costs *per scalar
element*, the way the real run-to-completion C loops would.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

__all__ = [
    "CycleCostModel",
    "LIBM_OPERATIONS",
    "OpCounter",
    "RestrictedEnvironmentError",
    "RestrictedMath",
]

#: The canonical libm gate table: every transcendental the restricted
#: environment exposes, mapped to the cycle-cost category it bills.  This
#: is the single source of truth consumed by three views of the same
#: contract: :meth:`RestrictedMath._require_libm` (the runtime gate), the
#: DEV001 static rule in :mod:`repro.analysis.device_rules` (the
#: source-level gate) and the C-codegen checker in
#: :mod:`repro.analysis.c_checker` (the artifact-level gate).
LIBM_OPERATIONS: Mapping[str, str] = MappingProxyType(
    {
        "sqrt": "libm_sqrt",
        "atan2": "libm_atan",
        "exp": "libm_exp",
    }
)


class RestrictedEnvironmentError(RuntimeError):
    """An app used a capability its build does not link (e.g. libm)."""


@dataclass
class OpCounter:
    """Tally of scalar operations executed by simulated app code."""

    counts: dict[str, int] = field(default_factory=dict)

    def charge(self, op: str, n: int = 1) -> None:
        """Add ``n`` occurrences of an operation to the tally."""
        if n < 0:
            raise ValueError("cannot charge a negative operation count")
        self.counts[op] = self.counts.get(op, 0) + int(n)

    def total(self) -> int:
        """Total scalar operations across all categories."""
        return sum(self.counts.values())

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's tallies into this one."""
        for op, n in other.counts.items():
            self.charge(op, n)

    def reset(self) -> None:
        """Clear all tallies."""
        self.counts.clear()

    def snapshot(self) -> dict[str, int]:
        """An independent copy of the current tallies."""
        return dict(self.counts)


@dataclass(frozen=True)
class CycleCostModel:
    """MSP430 cycles per scalar operation.

    The MSP430FR5989 has a hardware integer multiplier but no FPU: float
    arithmetic is software-emulated (mspabi routines, roughly 10^2 cycles
    per operation; the double-precision variants ~30 % more) and libm
    transcendentals cost thousands of cycles.  Integer ops (loop/index
    bookkeeping, histogram increments) take a handful of cycles.  These
    are engineering estimates in the spirit of ARP's "parameterized model
    of the app's energy consumption"; Table III depends mostly on their
    ratios.
    """

    int_op: int = 4  # add/sub/compare/increment, incl. addressing
    int_mul: int = 12  # via the hardware multiplier
    int_div: int = 80  # software routine
    float_add: int = 160  # software-emulated binary32
    float_mul: int = 200
    float_div: int = 550
    double_add: int = 210  # software-emulated binary64 (libm builds)
    double_mul: int = 260
    double_div: int = 700
    libm_sqrt: int = 1500
    libm_atan: int = 3000
    libm_exp: int = 2800
    mem_access: int = 3  # FRAM/SRAM read or write
    branch: int = 2

    def operation_names(self) -> frozenset[str]:
        """Every operation category this model prices (the field names)."""
        return frozenset(f.name for f in dataclasses.fields(self))

    def cycles_for(self, counter: OpCounter) -> int:
        """Total CPU cycles implied by an operation tally."""
        known = self.operation_names()
        total = 0
        for op, n in counter.counts.items():
            if op not in known:
                raise KeyError(f"no cycle cost defined for operation {op!r}")
            total += getattr(self, op) * n
        return total


class RestrictedMath:
    """Arithmetic primitives available to simulated Amulet app code.

    Parameters
    ----------
    counter:
        Destination for operation counts.
    allow_libm:
        Whether the build links the C math library.  Only the Original
        detector build does; the Simplified and Reduced builds were
        written specifically to avoid it.
    double_precision:
        Whether arithmetic is performed (and billed) in C ``double``.
        Libm-linking builds compute in double; the others in ``float``.
    """

    def __init__(
        self,
        counter: OpCounter | None = None,
        allow_libm: bool = False,
        double_precision: bool | None = None,
    ) -> None:
        self.counter = counter if counter is not None else OpCounter()
        self.allow_libm = bool(allow_libm)
        if double_precision is None:
            double_precision = self.allow_libm
        self.double_precision = bool(double_precision)
        self._dtype = np.float64 if self.double_precision else np.float32
        self._prefix = "double" if self.double_precision else "float"

    # -- precision helpers -------------------------------------------------

    def _real(self, values: np.ndarray | float) -> np.ndarray:
        return np.asarray(values, dtype=self._dtype)

    def _charge_real(self, kind: str, n: int) -> None:
        self.counter.charge(f"{self._prefix}_{kind}", n)

    # -- libm gate ----------------------------------------------------------

    def _require_libm(self, function: str) -> None:
        if function not in LIBM_OPERATIONS:
            raise KeyError(
                f"{function!r} is not a known libm operation; "
                f"the gate table lists: {', '.join(sorted(LIBM_OPERATIONS))}"
            )
        if not self.allow_libm:
            raise RestrictedEnvironmentError(
                f"{function}() requires the C math library, which this build "
                "does not link (paper, Section III: the Simplified version "
                '"did not utilize the standard C math library")'
            )

    # -- element-wise arithmetic ---------------------------------------------

    def add(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Element-wise addition, billed per scalar."""
        out = self._real(a) + self._real(b)
        self._charge_real("add", out.size)
        self.counter.charge("mem_access", 2 * out.size)
        return out.astype(self._dtype)

    def sub(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Element-wise subtraction, billed per scalar."""
        out = self._real(a) - self._real(b)
        self._charge_real("add", out.size)
        self.counter.charge("mem_access", 2 * out.size)
        return out.astype(self._dtype)

    def mul(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Element-wise multiplication, billed per scalar."""
        out = self._real(a) * self._real(b)
        self._charge_real("mul", out.size)
        self.counter.charge("mem_access", 2 * out.size)
        return out.astype(self._dtype)

    def div(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Saturating division: zero denominators use the smallest normal.

        Embedded code cannot trap on division by zero (the Amulet
        toolchain statically rejects "problematic integer operations"),
        so the device idiom is to clamp the denominator.
        """
        a, b = self._real(a), self._real(b)
        tiny = np.asarray(np.finfo(self._dtype).tiny, dtype=self._dtype)
        safe = np.where(np.abs(b) < tiny, np.where(b < 0, -tiny, tiny), b)
        out = (a / safe).astype(self._dtype)
        self._charge_real("div", out.size)
        self.counter.charge("mem_access", 2 * out.size)
        return out

    def maximum(self, a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
        """Element-wise maximum against a floor (a branch per element)."""
        out = np.maximum(self._real(a), self._real(b))
        self.counter.charge("branch", out.size)
        self.counter.charge("mem_access", 2 * out.size)
        return out.astype(self._dtype)

    # -- reductions -----------------------------------------------------------

    def sum(self, a: np.ndarray) -> float:
        """Sum reduction, billed as n-1 additions."""
        a = self._real(a)
        self._charge_real("add", max(a.size - 1, 0))
        self.counter.charge("mem_access", a.size)
        return self._dtype(a.sum(dtype=self._dtype))

    def mean(self, a: np.ndarray) -> float:
        """Arithmetic mean: a sum reduction plus one division."""
        a = self._real(a)
        total = self.sum(a)
        self._charge_real("div", 1)
        return self._dtype(total / self._dtype(max(a.size, 1)))

    def min(self, a: np.ndarray) -> float:
        """Minimum of an array (a branch per comparison)."""
        a = self._real(a)
        self.counter.charge("branch", max(a.size - 1, 0))
        self.counter.charge("mem_access", a.size)
        return self._dtype(a.min())

    def max(self, a: np.ndarray) -> float:
        """Maximum of an array (a branch per comparison)."""
        a = self._real(a)
        self.counter.charge("branch", max(a.size - 1, 0))
        self.counter.charge("mem_access", a.size)
        return self._dtype(a.max())

    # -- libm-gated transcendentals ---------------------------------------------

    def sqrt(self, a: np.ndarray | float) -> np.ndarray:
        """Square root (libm-gated)."""
        self._require_libm("sqrt")
        a = self._real(a)
        self.counter.charge(LIBM_OPERATIONS["sqrt"], a.size)
        return np.sqrt(a).astype(self._dtype)

    def atan2(self, y: np.ndarray | float, x: np.ndarray | float) -> np.ndarray:
        """Two-argument arctangent (libm-gated)."""
        self._require_libm("atan2")
        out = np.arctan2(self._real(y), self._real(x))
        self.counter.charge(LIBM_OPERATIONS["atan2"], out.size)
        return out.astype(self._dtype)

    def exp(self, a: np.ndarray | float) -> np.ndarray:
        """Exponential (libm-gated)."""
        self._require_libm("exp")
        a = self._real(a)
        self.counter.charge(LIBM_OPERATIONS["exp"], a.size)
        return np.exp(a).astype(self._dtype)

    # -- integer / structural helpers ----------------------------------------------

    def normalize_minmax(self, a: np.ndarray) -> np.ndarray:
        """Min-max normalize to [0, 1] (0.5 for flat signals)."""
        a = self._real(a)
        low = self.min(a)
        high = self.max(a)
        if high <= low:
            self.counter.charge("mem_access", a.size)
            return np.full(a.shape, self._dtype(0.5))
        span = self._dtype(high - low)
        self._charge_real("add", a.size)
        self._charge_real("div", a.size)
        self.counter.charge("mem_access", 2 * a.size)
        return ((a - low) / span).astype(self._dtype)

    def histogram2d(
        self, x: np.ndarray, y: np.ndarray, n: int, saturate: int | None = 255
    ) -> np.ndarray:
        """Occupancy matrix over [0,1]^2, as the device's int loop builds it.

        Per point: two real multiplications (coordinate scaling), two
        real->int truncations, two clamps and one histogram increment.
        ``saturate`` models the uint8 cell type of the on-device matrix
        (counts clip at 255); pass ``None`` for unbounded counts.
        """
        if n < 1:
            raise ValueError("grid size must be >= 1")
        x, y = self._real(x), self._real(y)
        if x.shape != y.shape:
            raise ValueError("x and y must have equal shape")
        col = np.clip((x * n).astype(np.int64), 0, n - 1)
        row = np.clip((y * n).astype(np.int64), 0, n - 1)
        matrix = np.zeros((n, n), dtype=np.int64)
        np.add.at(matrix, (row, col), 1)
        if saturate is not None:
            matrix = np.minimum(matrix, int(saturate))
        self._charge_real("mul", 2 * x.size)
        self.counter.charge("int_op", 4 * x.size)  # truncate + clamp x2
        self.counter.charge("mem_access", 3 * x.size)
        return matrix

    def int_sum(self, a: np.ndarray) -> int:
        """Integer sum of an array, billed as the int loop."""
        a = np.asarray(a)
        self.counter.charge("int_op", max(a.size - 1, 0))
        self.counter.charge("mem_access", a.size)
        return int(a.sum())

    def int_sq_sum(self, a: np.ndarray) -> int:
        """Sum of squares of integer values (hardware-multiplier loop)."""
        a = np.asarray(a, dtype=np.int64)
        self.counter.charge("int_mul", a.size)
        self.counter.charge("int_op", max(a.size - 1, 0))
        self.counter.charge("mem_access", a.size)
        return int(np.sum(a * a))

    def int_to_real(self, a: np.ndarray) -> np.ndarray:
        """Integer-to-real conversion, billed per element."""
        a = np.asarray(a)
        self.counter.charge("int_op", a.size)
        self.counter.charge("mem_access", 2 * a.size)
        return a.astype(self._dtype)

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Real dot product (used by the Original build's classifier)."""
        a, b = self._real(a), self._real(b)
        if a.shape != b.shape:
            raise ValueError("dot operands must have equal shape")
        self._charge_real("mul", a.size)
        self._charge_real("add", max(a.size - 1, 0))
        self.counter.charge("mem_access", 2 * a.size)
        return self._dtype(np.dot(a, b))

    def fixed_mac(
        self, weights_q: np.ndarray, features_q: np.ndarray, frac_bits: int
    ) -> int:
        """Integer multiply-accumulate of a quantized linear model."""
        weights_q = np.asarray(weights_q, dtype=np.int64)
        features_q = np.asarray(features_q, dtype=np.int64)
        if weights_q.shape != features_q.shape:
            raise ValueError("weight and feature vectors must have equal shape")
        acc = 0
        for w, f in zip(weights_q.tolist(), features_q.tolist()):
            acc += (w * f) >> frac_bits
        self.counter.charge("int_mul", weights_q.size)
        self.counter.charge("int_op", 2 * weights_q.size)  # shift + accumulate
        self.counter.charge("mem_access", 2 * weights_q.size)
        return acc
