"""The Amulet Resource Profiler (ARP).

ARP "captures information about each app's code space and memory
requirements, using a combination of compiler tools and static analysis"
and "builds a parameterized model of the app's energy consumption"; its
front end ARP-view shows a per-component breakdown with sliders for app
parameters (paper Fig. 3).  This module reproduces that workflow:

* memory comes from the firmware image's static layout;
* energy comes from a measured run -- an app processes representative
  workload events on the simulated OS, the
  :class:`~repro.amulet.amulet_os.UsageLedger` records cycles and
  peripheral events, and the profiler turns those into an average current
  and a battery-lifetime projection;
* :meth:`ResourceProfile.with_period` is the ARP-view slider: re-evaluate
  the lifetime as the app's detection period changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.amulet.amulet_os import UsageLedger
from repro.amulet.battery import Battery
from repro.amulet.firmware import FirmwareImage
from repro.amulet.restricted import CycleCostModel, OpCounter

__all__ = ["AmuletResourceProfiler", "ResourceProfile"]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class ResourceProfile:
    """Everything Table III and Fig. 3 report for one app build.

    Currents are in mA, memory in bytes, the period in seconds.
    ``current_breakdown`` maps component labels (cpu op classes,
    peripherals, static draws) to their average-current contribution;
    its values sum to ``average_current_ma``.
    """

    app_name: str
    system_fram_bytes: int
    app_fram_bytes: int
    system_sram_bytes: int
    app_sram_bytes: int
    cycles_per_event: float
    events_per_period: dict[str, float]
    period_s: float
    average_current_ma: float
    current_breakdown: dict[str, float]
    lifetime_days: float
    battery: Battery

    # -- presentation helpers ---------------------------------------------

    @property
    def system_fram_kb(self) -> float:
        return self.system_fram_bytes / 1024.0

    @property
    def app_fram_kb(self) -> float:
        return self.app_fram_bytes / 1024.0

    def table_row(self) -> dict[str, str]:
        """One app's rows of Table III, formatted like the paper."""
        return {
            "Memory Use (FRAM)": (
                f"{self.system_fram_kb:.2f} KB_system + "
                f"{self.app_fram_kb:.2f} KB_detector"
            ),
            "Max Ram Use (SRAM)": (
                f"{self.system_sram_bytes} B_system + "
                f"{self.app_sram_bytes} B_detector"
            ),
            "Expected Lifetime": f"{self.lifetime_days:.0f} days",
        }

    def with_period(self, period_s: float) -> "ResourceProfile":
        """The ARP-view slider: same app, different detection period.

        Compute charge and peripheral events scale inversely with the
        period; static draws are unchanged.
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        ratio = self.period_s / period_s
        breakdown = {
            label: current * ratio if label in self._dynamic_labels() else current
            for label, current in self.current_breakdown.items()
        }
        average = sum(breakdown.values())
        return replace(
            self,
            period_s=period_s,
            current_breakdown=breakdown,
            average_current_ma=average,
            lifetime_days=self.battery.lifetime_days(average),
        )

    def _dynamic_labels(self) -> set[str]:
        """Breakdown labels that scale with the event rate."""
        return {
            label
            for label in self.current_breakdown
            if label.startswith("cpu.") or label.startswith("peripheral.")
        }


class AmuletResourceProfiler:
    """Builds :class:`ResourceProfile` objects from a measured run."""

    def __init__(
        self,
        battery: Battery | None = None,
        cost_model: CycleCostModel | None = None,
    ) -> None:
        self.battery = battery or Battery()
        self.cost_model = cost_model or CycleCostModel()

    def profile(
        self,
        image: FirmwareImage,
        app_name: str,
        ledger: UsageLedger,
        n_events: int,
        period_s: float,
    ) -> ResourceProfile:
        """Profile one app from a run of ``n_events`` workload events.

        Parameters
        ----------
        image:
            The firmware image the run used (memory layout).
        app_name:
            Which app to attribute the run to.
        ledger:
            The OS ledger after processing the workload.
        n_events:
            Number of workload events (detection windows) processed, used
            to normalize the ledger to per-event costs.
        period_s:
            Wall-clock spacing of workload events; the detector receives
            one window every ``w = 3 s``.
        """
        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        build = image.build_for(app_name)
        hardware = image.hardware
        mcu = hardware.mcu

        cycles = ledger.cycles_by_app.get(app_name, 0)
        cycles_per_event = cycles / n_events
        ops = ledger.ops_by_app.get(app_name, OpCounter())

        breakdown: dict[str, float] = {}
        # CPU compute, split by operation class for the Fig. 3 view.
        active_minus_sleep = mcu.active_current_ma - mcu.sleep_current_ma
        for op, count in sorted(ops.snapshot().items()):
            op_cycles = getattr(self.cost_model, op) * count
            seconds_per_event = mcu.cycles_to_seconds(op_cycles) / n_events
            breakdown[f"cpu.{op}"] = (
                active_minus_sleep * seconds_per_event / period_s
            )
        # Peripheral event charges, normalized to a continuous current.
        for name, count in sorted(ledger.peripheral_events.items()):
            peripheral = hardware.peripheral(name)
            events_per_second = count / n_events / period_s
            breakdown[f"peripheral.{name}"] = (
                peripheral.event_charge_mah * events_per_second * _SECONDS_PER_HOUR
            )
        # Static floor: MCU sleep plus always-on peripheral rails.
        breakdown["static.mcu_sleep"] = mcu.sleep_current_ma
        for name, peripheral in sorted(hardware.peripherals.items()):
            if peripheral.static_current_ma > 0:
                breakdown[f"static.{name}"] = peripheral.static_current_ma

        average = sum(breakdown.values())
        events_per_period = {
            name: count / n_events
            for name, count in sorted(ledger.peripheral_events.items())
        }
        return ResourceProfile(
            app_name=app_name,
            system_fram_bytes=image.system_fram_bytes,
            app_fram_bytes=build.fram_bytes,
            system_sram_bytes=image.system_sram_bytes,
            app_sram_bytes=build.sram_bytes,
            cycles_per_event=cycles_per_event,
            events_per_period=events_per_period,
            period_s=period_s,
            average_current_ma=average,
            current_breakdown=breakdown,
            lifetime_days=self.battery.lifetime_days(average),
            battery=self.battery,
        )
