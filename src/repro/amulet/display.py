"""The Amulet's display.

The detector app uses the display twice: the PeaksDataCheck state shows
the incoming ECG/ABP snippets, and the MLClassifier state "will generate
an alert on the LED screen".  The simulation keeps a small line buffer
(like the Sharp memory LCD's line-addressed model) and reports refresh
events so the profiler can charge their energy.  It is also the debugging
channel the authors were forced to use (Insight #3), so the buffer is
inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Display"]


@dataclass
class Display:
    """A line-buffered monochrome display."""

    n_lines: int = 8
    line_width: int = 24
    lines: list[str] = field(init=False)
    refresh_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_lines < 1 or self.line_width < 1:
            raise ValueError("display dimensions must be positive")
        self.lines = [""] * self.n_lines

    def write_line(self, index: int, text: str) -> None:
        """Write one line (truncated to the panel width) and refresh."""
        if not 0 <= index < self.n_lines:
            raise IndexError(
                f"line {index} out of range for {self.n_lines}-line display"
            )
        self.lines[index] = text[: self.line_width]
        self.refresh_count += 1

    def scroll_message(self, text: str) -> None:
        """Append a message at the bottom, scrolling prior lines up."""
        self.lines = self.lines[1:] + [text[: self.line_width]]
        self.refresh_count += 1

    def clear(self) -> None:
        """Blank every line (one refresh)."""
        self.lines = [""] * self.n_lines
        self.refresh_count += 1

    def visible_text(self) -> str:
        """The panel contents as one newline-joined string."""
        return "\n".join(self.lines)

    def contains(self, needle: str) -> bool:
        """Debugging aid: is some text currently on screen?"""
        return any(needle in line for line in self.lines)
