"""Firmware flashing: the cost of switching detector versions.

The paper's Insight #4 complains that "the Amulet device has to be flashed
every time when switching to another version of SIFT".  This module models
that operation so the adaptive engine can charge it honestly:

* flashing writes the new image over the wire and into FRAM, consuming
  charge proportional to the image size;
* detection is *down* for the duration of the flash -- a coverage gap the
  adaptive timeline should account for;
* the flash store keeps the available images (compiled once, off-device),
  which is how a practical adaptive deployment would stage its versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amulet.firmware import FirmwareImage

__all__ = ["FlashManager", "FlashOperation"]


@dataclass(frozen=True)
class FlashOperation:
    """One completed (re)flash."""

    image_name: str
    image_bytes: int
    duration_s: float
    charge_mah: float
    at_time_h: float


@dataclass
class FlashManager:
    """Stages firmware images and performs (simulated) reflashes.

    Parameters
    ----------
    write_bytes_per_s:
        Effective flash throughput including transfer and FRAM writes.
        BLE transfer of a ~70 KB image dominates; a few KB/s is typical.
    flash_current_ma:
        Average current during a flash (radio + FRAM writes).
    """

    write_bytes_per_s: float = 4096.0
    flash_current_ma: float = 4.5
    images: dict[str, FirmwareImage] = field(default_factory=dict)
    history: list[FlashOperation] = field(default_factory=list)
    installed: str | None = None

    def __post_init__(self) -> None:
        if self.write_bytes_per_s <= 0:
            raise ValueError("write_bytes_per_s must be positive")
        if self.flash_current_ma < 0:
            raise ValueError("flash_current_ma must be non-negative")

    def stage(self, name: str, image: FirmwareImage) -> None:
        """Register a compiled image under a name."""
        if not name:
            raise ValueError("image name must be non-empty")
        self.images[name] = image

    def flash_cost(self, name: str) -> tuple[float, float]:
        """``(duration_s, charge_mah)`` of flashing a staged image."""
        image = self._get(name)
        duration_s = image.total_fram_bytes / self.write_bytes_per_s
        charge_mah = self.flash_current_ma * duration_s / 3600.0
        return duration_s, charge_mah

    def flash(self, name: str, at_time_h: float = 0.0) -> FlashOperation:
        """Install a staged image; returns the operation's cost record.

        Re-flashing the already-installed image is rejected -- the
        decision engine should not pay for a no-op.
        """
        image = self._get(name)
        if name == self.installed:
            raise ValueError(f"image {name!r} is already installed")
        duration_s, charge_mah = self.flash_cost(name)
        operation = FlashOperation(
            image_name=name,
            image_bytes=image.total_fram_bytes,
            duration_s=duration_s,
            charge_mah=charge_mah,
            at_time_h=at_time_h,
        )
        self.history.append(operation)
        self.installed = name
        return operation

    def _get(self, name: str) -> FirmwareImage:
        try:
            return self.images[name]
        except KeyError:
            raise KeyError(
                f"no staged image named {name!r}; staged: {sorted(self.images)}"
            ) from None

    @property
    def total_flash_charge_mah(self) -> float:
        return sum(op.charge_mah for op in self.history)

    @property
    def total_downtime_s(self) -> float:
        return sum(op.duration_s for op in self.history)
