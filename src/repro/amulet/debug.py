"""Debugging tools for simulated Amulet apps (paper Insight #3).

The authors' strongest complaint: "the lack of good debugging tools
seriously reduces the efficacy of the app developer" -- GDB crashed, so
they debugged by writing variables to the LED screen and re-flashing for
every change.  The insight asks platform developers for exactly three
things, all provided here against the simulator:

* *"showing the resource consumption of the application"* --
  :class:`DebugTracer` records per-dispatch cycle costs and operation
  tallies;
* *"showing where and how the sensor data is being transformed"* -- the
  tracer logs every state transition and event with payload summaries;
* *"providing a desktop based simulator that emulates the screen
  writing"* -- :class:`DisplayRecorder` captures every frame the app ever
  drew, so "printf-via-LED" debugging works without re-flashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.qm import Event

__all__ = ["DebugTracer", "DispatchTrace", "DisplayRecorder"]


@dataclass(frozen=True)
class DispatchTrace:
    """One dispatched event, as the tracer saw it."""

    sequence: int
    app_name: str
    signal: str
    payload_summary: str
    state_before: str
    state_after: str
    cycles: int
    ops: dict[str, int]
    sim_time_s: float

    @property
    def transitioned(self) -> bool:
        return self.state_before != self.state_after

    def format(self) -> str:
        arrow = (
            f"{self.state_before} -> {self.state_after}"
            if self.transitioned
            else self.state_before
        )
        return (
            f"[{self.sequence:04d} t={self.sim_time_s:9.4f}s] "
            f"{self.app_name}: {self.signal} ({self.payload_summary}) "
            f"in {arrow}, {self.cycles} cycles"
        )


def _summarize_payload(payload: Any) -> str:
    if payload is None:
        return "no payload"
    text = repr(payload)
    if len(text) > 48:
        text = f"{type(payload).__name__}<{len(text)} chars>"
    return text


class DebugTracer:
    """Wraps an :class:`AmuletOS` to record a full execution trace.

    Usage::

        os = AmuletOS(image)
        tracer = DebugTracer(os)
        ...deliver events...
        os.run_until_idle()
        print(tracer.format_trace())

    The tracer hooks the OS's ``step`` method; detaching restores it.
    """

    def __init__(self, os: AmuletOS, max_entries: int = 10_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.os = os
        self.max_entries = int(max_entries)
        self.traces: list[DispatchTrace] = []
        self.dropped = 0
        self._original_step = os.step
        os.step = self._traced_step  # type: ignore[method-assign]
        self._attached = True

    def detach(self) -> None:
        """Restore the OS's original step method."""
        if self._attached:
            self.os.step = self._original_step  # type: ignore[method-assign]
            self._attached = False

    # ------------------------------------------------------------------

    def _peek_next(self) -> tuple[str, Event] | None:
        queue = self.os._queue
        return queue[0] if queue else None

    def _traced_step(self) -> bool:
        pending = self._peek_next()
        if pending is None:
            return self._original_step()
        app_name, event = pending
        container = self.os.container(app_name)
        state_before = (
            container.app.machine.current.name
            if container.app.machine.current
            else "<unstarted>"
        )
        cycles_before = self.os.ledger.cycles_by_app.get(app_name, 0)

        result = self._original_step()

        state_after = (
            container.app.machine.current.name
            if container.app.machine.current
            else "<unstarted>"
        )
        trace = DispatchTrace(
            sequence=self.os.ledger.dispatches,
            app_name=app_name,
            signal=event.signal,
            payload_summary=_summarize_payload(event.payload),
            state_before=state_before,
            state_after=state_after,
            cycles=self.os.ledger.cycles_by_app.get(app_name, 0) - cycles_before,
            ops=container.counter.snapshot(),
            sim_time_s=self.os.ledger.sim_time_s,
        )
        if len(self.traces) < self.max_entries:
            self.traces.append(trace)
        else:
            self.dropped += 1
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def transitions(self) -> list[DispatchTrace]:
        """Only the dispatches whose net state changed."""
        return [t for t in self.traces if t.transitioned]

    def hottest_dispatches(self, n: int = 5) -> list[DispatchTrace]:
        """The n most cycle-expensive dispatches (the profiler's view)."""
        return sorted(self.traces, key=lambda t: t.cycles, reverse=True)[:n]

    def cycles_by_signal(self) -> dict[str, int]:
        """Aggregate cost per event signal -- "where does the time go"."""
        totals: dict[str, int] = {}
        for trace in self.traces:
            totals[trace.signal] = totals.get(trace.signal, 0) + trace.cycles
        return totals

    def format_trace(self, last: int | None = None) -> str:
        """Render the (optionally truncated) trace as text."""
        traces = self.traces if last is None else self.traces[-last:]
        lines = [trace.format() for trace in traces]
        if self.dropped:
            lines.append(f"... ({self.dropped} entries dropped)")
        return "\n".join(lines) if lines else "(no dispatches traced)"


class DisplayRecorder:
    """Captures every frame an app draws -- desktop screen emulation.

    The paper's authors debugged by flashing values to the LED screen and
    physically watching it.  The recorder keeps the full frame history so
    a desktop run can inspect everything that was ever shown.
    """

    def __init__(self, os: AmuletOS, max_frames: int = 10_000) -> None:
        if max_frames < 1:
            raise ValueError("max_frames must be >= 1")
        self.display = os.display
        self.max_frames = int(max_frames)
        self.frames: list[tuple[int, str]] = []
        self._original_write = self.display.write_line
        self._original_scroll = self.display.scroll_message
        self.display.write_line = self._recording_write  # type: ignore[method-assign]
        self.display.scroll_message = self._recording_scroll  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the display's original write methods."""
        self.display.write_line = self._original_write  # type: ignore[method-assign]
        self.display.scroll_message = self._original_scroll  # type: ignore[method-assign]

    def _snapshot(self) -> None:
        if len(self.frames) < self.max_frames:
            self.frames.append(
                (self.display.refresh_count, self.display.visible_text())
            )

    def _recording_write(self, index: int, text: str) -> None:
        self._original_write(index, text)
        self._snapshot()

    def _recording_scroll(self, text: str) -> None:
        self._original_scroll(text)
        self._snapshot()

    def frames_containing(self, needle: str) -> list[tuple[int, str]]:
        """All recorded frames in which some text was visible."""
        return [frame for frame in self.frames if needle in frame[1]]

    def ever_showed(self, needle: str) -> bool:
        """Was some text visible in any recorded frame?"""
        return bool(self.frames_containing(needle))

    @property
    def n_frames(self) -> int:
        return len(self.frames)
