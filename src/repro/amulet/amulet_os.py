"""AmuletOS: app isolation, event loop and system services.

The OS model matches the paper's description: applications are isolated
state machines ("no processes or threads, all application code runs to
completion"), events are delivered one at a time from a queue, and apps
reach hardware only through system services.  Each installed app gets its
own operation counter and restricted math environment -- one app can
neither read another's memory nor consume its budget, which is the
isolation property AmuletOS provides on the real device.

The services deliberately include the two APIs the authors report having
had to write themselves (Insight #2): ``float_to_string`` and
``string_to_float``, implemented here with integer arithmetic exactly as
one would on the device.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.amulet.display import Display
from repro.amulet.firmware import AppBuild, FirmwareImage
from repro.amulet.hardware import AmuletHardware
from repro.amulet.qm import Event, QMApp
from repro.amulet.restricted import CycleCostModel, OpCounter, RestrictedMath

__all__ = ["AmuletOS", "OSServices", "UsageLedger"]

#: Fixed scheduler overhead charged per dispatched event (queue pop,
#: dispatch table lookup, state bookkeeping).
_DISPATCH_OVERHEAD_INT_OPS = 160


@dataclass
class UsageLedger:
    """Everything the resource profiler needs about a run."""

    cycles_by_app: dict[str, int] = field(default_factory=dict)
    ops_by_app: dict[str, OpCounter] = field(default_factory=dict)
    peripheral_events: dict[str, int] = field(default_factory=dict)
    dispatches: int = 0
    sim_time_s: float = 0.0

    def charge_cycles(self, app_name: str, cycles: int) -> None:
        self.cycles_by_app[app_name] = self.cycles_by_app.get(app_name, 0) + cycles

    def charge_peripheral(self, name: str, n: int = 1) -> None:
        self.peripheral_events[name] = self.peripheral_events.get(name, 0) + n

    def merge_ops(self, app_name: str, ops: OpCounter) -> None:
        self.ops_by_app.setdefault(app_name, OpCounter()).merge(ops)

    def total_cycles(self) -> int:
        return sum(self.cycles_by_app.values())


@dataclass
class _AppContainer:
    """Per-app isolation context."""

    build: AppBuild
    counter: OpCounter
    math: RestrictedMath
    mailbox: deque = field(default_factory=deque)

    @property
    def app(self) -> QMApp:
        return self.build.app


class OSServices:
    """The system-call surface handed to one app's handlers."""

    def __init__(self, os: "AmuletOS", container: _AppContainer) -> None:
        self._os = os
        self._container = container
        #: Restricted math environment (this app's counter + libm gate).
        self.math = container.math

    # -- display & alerts -------------------------------------------------

    def display_write(self, line: int, text: str) -> None:
        """Write one display line (one refresh charged)."""
        self._os.display.write_line(line, text)
        self._os.ledger.charge_peripheral("display")

    def display_scroll(self, text: str) -> None:
        """Scroll a message onto the display (one refresh charged)."""
        self._os.display.scroll_message(text)
        self._os.ledger.charge_peripheral("display")

    def alert(self, message: str) -> None:
        """Raise a user-visible alert: display line plus a haptic buzz."""
        self._os.display.scroll_message(f"! {message}")
        self._os.ledger.charge_peripheral("display")
        self._os.ledger.charge_peripheral("haptic")

    # -- data & events -----------------------------------------------------

    def fetch_window(self) -> Any:
        """Fetch the next pre-stored / received data snippet, or ``None``.

        The paper pre-stores ECG and ABP snippets (and their peak indexes)
        in memory; at run time the same mailbox is fed by BLE reception.
        """
        if not self._container.mailbox:
            return None
        return self._container.mailbox.popleft()

    def post(self, signal: str, payload: Any = None) -> None:
        """Enqueue an event to this app (QM self-posting)."""
        self._os.post(self._container.app.name, Event(signal, payload))

    def time_s(self) -> float:
        """Current simulated time in seconds."""
        return self._os.ledger.sim_time_s

    # -- the hand-written conversion APIs (Insight #2) ---------------------

    def float_to_string(self, value: float, decimals: int = 2) -> str:
        """Format a float with integer arithmetic only.

        Rounds half away from zero at the requested number of decimals,
        like the device implementation built on integer divide/modulo.
        """
        if decimals < 0 or decimals > 7:
            raise ValueError("decimals must be in [0, 7] for 32-bit floats")
        math = self.math
        scale = 10**decimals
        negative = value < 0
        magnitude = -value if negative else value
        scaled = int(magnitude * scale + 0.5)
        math.counter.charge("float_mul", 1)
        math.counter.charge("int_op", 4)
        int_part, frac_part = divmod(scaled, scale)
        math.counter.charge("int_div", 1)
        digits = str(int_part)
        math.counter.charge("int_div", max(len(digits) - 1, 0))
        if decimals == 0:
            text = digits
        else:
            frac_digits = str(frac_part).rjust(decimals, "0")
            math.counter.charge("int_div", decimals)
            text = f"{digits}.{frac_digits}"
        return f"-{text}" if negative else text

    def string_to_float(self, text: str) -> float:
        """Parse a decimal string with integer arithmetic only."""
        stripped = text.strip()
        if not stripped:
            raise ValueError("cannot parse an empty string")
        negative = stripped.startswith("-")
        if stripped[0] in "+-":
            stripped = stripped[1:]
        if not stripped or stripped == ".":
            raise ValueError(f"malformed number: {text!r}")
        int_text, _, frac_text = stripped.partition(".")
        for part in (int_text, frac_text):
            if part and not part.isdigit():
                raise ValueError(f"malformed number: {text!r}")
        math = self.math
        value = 0
        for ch in int_text:
            value = value * 10 + (ord(ch) - ord("0"))
            math.counter.charge("int_mul", 1)
            math.counter.charge("int_op", 2)
        frac = 0
        for ch in frac_text:
            frac = frac * 10 + (ord(ch) - ord("0"))
            math.counter.charge("int_mul", 1)
            math.counter.charge("int_op", 2)
        result = float(value) + (float(frac) / (10 ** len(frac_text)) if frac_text else 0.0)
        math.counter.charge("float_add", 1)
        math.counter.charge("float_div", 1)
        return -result if negative else result


class AmuletOS:
    """The operating system: installs a firmware image and runs events.

    Parameters
    ----------
    image:
        A linked :class:`~repro.amulet.firmware.FirmwareImage`.
    hardware:
        The device; defaults to the image's hardware.
    cost_model:
        Cycle costs used to advance simulated time and fill the ledger.
    """

    def __init__(
        self,
        image: FirmwareImage,
        hardware: AmuletHardware | None = None,
        cost_model: CycleCostModel | None = None,
    ) -> None:
        self.image = image
        self.hardware = hardware or image.hardware
        self.cost_model = cost_model or CycleCostModel()
        self.display = Display()
        self.ledger = UsageLedger()
        self._queue: deque[tuple[str, Event]] = deque()
        self._containers: dict[str, _AppContainer] = {}
        for build in image.builds:
            self._install(build)

    def _install(self, build: AppBuild) -> None:
        counter = OpCounter()
        allow_libm = build.app.uses_libm() and self.image.links_libm
        container = _AppContainer(
            build=build,
            counter=counter,
            math=RestrictedMath(counter=counter, allow_libm=allow_libm),
        )
        self._containers[build.name] = container
        build.app.services = OSServices(self, container)
        build.app.start()

    # -- event plumbing ----------------------------------------------------

    def container(self, app_name: str) -> _AppContainer:
        """The isolation container of an installed app (KeyError if absent)."""
        try:
            return self._containers[app_name]
        except KeyError:
            raise KeyError(f"no installed app named {app_name!r}") from None

    def post(self, app_name: str, event: Event) -> None:
        """Enqueue an event for an installed app."""
        self.container(app_name)  # validate target
        self._queue.append((app_name, event))

    def deliver_sensor_window(self, app_name: str, payload: Any) -> None:
        """Model BLE reception of one sensor snippet for an app."""
        self.container(app_name).mailbox.append(payload)
        self.ledger.charge_peripheral("ble_radio")
        self.post(app_name, Event("SENSOR_DATA"))

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Dispatch one queued event; returns ``False`` when idle."""
        if not self._queue:
            return False
        app_name, event = self._queue.popleft()
        container = self._containers[app_name]
        container.counter.reset()
        container.counter.charge("int_op", _DISPATCH_OVERHEAD_INT_OPS)
        container.app.dispatch(event)
        cycles = self.cost_model.cycles_for(container.counter)
        self.ledger.charge_cycles(app_name, cycles)
        self.ledger.merge_ops(app_name, container.counter)
        self.ledger.dispatches += 1
        self.ledger.sim_time_s += self.hardware.mcu.cycles_to_seconds(cycles)
        return True

    def run_until_idle(self, max_dispatches: int = 100_000) -> int:
        """Dispatch until the queue drains; returns the dispatch count."""
        dispatched = 0
        while self.step():
            dispatched += 1
            if dispatched > max_dispatches:
                raise RuntimeError(
                    f"event queue did not drain within {max_dispatches} "
                    "dispatches; suspected self-posting loop"
                )
        return dispatched
