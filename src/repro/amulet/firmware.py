"""The Amulet Firmware Toolchain, simulated.

The real toolchain translates Amulet-C to safe C, runs static checks
(array bounds, no recursion/goto/pointers, no problematic integer
operations), merges all apps into one QM file and links only what is
needed -- "efficient app isolation and optimization through compile-time
techniques".  This module reproduces the parts that matter for the paper's
evaluation:

* **Static checks** that encode the platform limitations the authors hit
  (Insight #1): no 2-D arrays, a cap on single-array size, per-app SRAM
  quotas, and whole-image FRAM/SRAM fit;
* **Demand linking** of system components: libm and the soft-double
  library enter the image only when some app requires them, which is why
  the Simplified build's *system* footprint drops relative to Original
  (Table III);
* a **memory layout** (:class:`FirmwareImage`) with per-app code/data
  segments, consumed by the resource profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amulet.hardware import AmuletHardware
from repro.amulet.qm import QMApp

__all__ = [
    "AppBuild",
    "ArrayDeclaration",
    "FirmwareImage",
    "FirmwareToolchain",
    "StaticCheckError",
    "SystemComponent",
]


class StaticCheckError(Exception):
    """A compile-time check rejected the application."""


@dataclass(frozen=True)
class ArrayDeclaration:
    """An app-level array attribute, as declared in the QM file.

    AmuletOS arrays carry an associated length for bounds checking; the
    toolchain additionally rejects 2-D arrays and over-large allocations,
    the two restrictions the paper's Insight #1 complains about.
    """

    name: str
    element_bytes: int
    length: int
    dimensions: int = 1

    def __post_init__(self) -> None:
        if self.element_bytes < 1 or self.length < 1:
            raise ValueError("array element size and length must be positive")
        if self.dimensions < 1:
            raise ValueError("dimensions must be >= 1")

    @property
    def total_bytes(self) -> int:
        return self.element_bytes * self.length


@dataclass(frozen=True)
class SystemComponent:
    """One linkable piece of the system image."""

    name: str
    fram_bytes: int
    sram_bytes: int = 0
    #: Service tag that pulls this component in; ``None`` = always linked.
    provides: str | None = None


def default_system_components() -> list[SystemComponent]:
    """The AmuletOS component inventory with engineering size estimates.

    Always-linked pieces model the OS core, QM runtime and drivers;
    demand-linked pieces model the capabilities the SIFT builds differ in:
    ``libm`` (and the soft-double arithmetic it drags in) for the Original
    build, grid/DSP helpers for the matrix-feature builds, and the
    string<->float conversion API the authors wrote (Insight #2).
    """
    return [
        SystemComponent("os_core", fram_bytes=20_800, sram_bytes=320),
        SystemComponent("qm_runtime", fram_bytes=6_200, sram_bytes=96),
        SystemComponent("display_driver", fram_bytes=4_900, sram_bytes=64),
        SystemComponent("ble_driver", fram_bytes=5_600, sram_bytes=120),
        SystemComponent("sensor_drivers", fram_bytes=3_900, sram_bytes=48),
        SystemComponent("app_framework", fram_bytes=7_800, sram_bytes=46),
        SystemComponent(
            "softfp_single", fram_bytes=3_900, provides="float_arithmetic"
        ),
        SystemComponent(
            "softfp_double", fram_bytes=4_700, provides="double_arithmetic"
        ),
        SystemComponent("libm", fram_bytes=5_800, provides="libm"),
        SystemComponent(
            "string_float_api", fram_bytes=1_300, provides="string_float"
        ),
        SystemComponent(
            "sensor_pipeline", fram_bytes=9_300, sram_bytes=2, provides="signal_arrays"
        ),
        SystemComponent("grid_dsp_api", fram_bytes=6_400, provides="grid_dsp"),
    ]


@dataclass(frozen=True)
class AppBuild:
    """A statically checked application, ready to install."""

    app: QMApp
    code_bytes: int
    data_bytes: int
    sram_bytes: int
    required_services: frozenset[str]

    @property
    def fram_bytes(self) -> int:
        return self.code_bytes + self.data_bytes

    @property
    def name(self) -> str:
        return self.app.name


@dataclass(frozen=True)
class FirmwareImage:
    """The merged firmware: system components plus app builds."""

    builds: tuple[AppBuild, ...]
    components: tuple[SystemComponent, ...]
    hardware: AmuletHardware = field(default_factory=AmuletHardware)

    @property
    def system_fram_bytes(self) -> int:
        return sum(c.fram_bytes for c in self.components)

    @property
    def system_sram_bytes(self) -> int:
        return sum(c.sram_bytes for c in self.components)

    @property
    def app_fram_bytes(self) -> int:
        return sum(b.fram_bytes for b in self.builds)

    @property
    def app_sram_bytes(self) -> int:
        """Peak app SRAM: handlers run to completion, one at a time."""
        return max((b.sram_bytes for b in self.builds), default=0)

    @property
    def total_fram_bytes(self) -> int:
        return self.system_fram_bytes + self.app_fram_bytes

    @property
    def total_sram_bytes(self) -> int:
        return self.system_sram_bytes + self.app_sram_bytes

    @property
    def links_libm(self) -> bool:
        return any(c.name == "libm" for c in self.components)

    def build_for(self, app_name: str) -> AppBuild:
        """The AppBuild of a named app (KeyError if absent)."""
        for build in self.builds:
            if build.name == app_name:
                return build
        raise KeyError(f"no app named {app_name!r} in this image")

    def memory_map(self) -> list[tuple[str, str, int]]:
        """``(segment, kind, bytes)`` rows, system first then apps."""
        rows: list[tuple[str, str, int]] = [
            (component.name, "system", component.fram_bytes)
            for component in self.components
        ]
        for build in self.builds:
            rows.append((f"{build.name}.code", "app", build.code_bytes))
            rows.append((f"{build.name}.data", "app", build.data_bytes))
        return rows


class FirmwareToolchain:
    """Static checker and linker.

    Parameters
    ----------
    hardware:
        Target device (memory capacities for fit checks).
    max_array_bytes:
        Largest single array an app may declare.  The default admits the
        paper's two 1080-element ``float`` arrays (4320 B each) with
        little headroom -- the constraint Insight #1 describes.
    components:
        System component inventory; defaults to
        :func:`default_system_components`.
    """

    def __init__(
        self,
        hardware: AmuletHardware | None = None,
        max_array_bytes: int = 4_608,
        components: list[SystemComponent] | None = None,
    ) -> None:
        self.hardware = hardware or AmuletHardware()
        self.max_array_bytes = int(max_array_bytes)
        self.components = (
            components if components is not None else default_system_components()
        )

    # -- per-app checks ---------------------------------------------------

    def check_app(self, app: QMApp) -> AppBuild:
        """Run the static checks on one app and size its segments."""
        arrays = list(getattr(app, "array_declarations", list)())
        for array in arrays:
            if array.dimensions > 1:
                raise StaticCheckError(
                    f"app {app.name!r}: array {array.name!r} is "
                    f"{array.dimensions}-D; the platform does not support "
                    "2-D arrays (Insight #1)"
                )
            if array.total_bytes > self.max_array_bytes:
                raise StaticCheckError(
                    f"app {app.name!r}: array {array.name!r} needs "
                    f"{array.total_bytes} B, exceeding the platform's "
                    f"{self.max_array_bytes} B array limit (Insight #1)"
                )
        sram = app.sram_peak_bytes()
        if sram < 0:
            raise StaticCheckError(f"app {app.name!r}: negative SRAM declaration")
        services = set(getattr(app, "required_services", set)())
        if app.uses_libm():
            services |= {"libm", "double_arithmetic"}
        unknown = services - {
            c.provides for c in self.components if c.provides is not None
        }
        if unknown:
            raise StaticCheckError(
                f"app {app.name!r} requires services with no providing "
                f"component: {sorted(unknown)}"
            )
        return AppBuild(
            app=app,
            code_bytes=app.code_bytes,
            data_bytes=app.data_bytes,
            sram_bytes=sram,
            required_services=frozenset(services),
        )

    # -- image link --------------------------------------------------------

    def build(self, apps: list[QMApp]) -> FirmwareImage:
        """Check every app, link required components, verify the fit."""
        if not apps:
            raise StaticCheckError("an image needs at least one application")
        names = [app.name for app in apps]
        if len(set(names)) != len(names):
            raise StaticCheckError(f"duplicate app names in image: {names}")
        builds = tuple(self.check_app(app) for app in apps)

        needed = set().union(*(b.required_services for b in builds))
        linked = tuple(
            c
            for c in self.components
            if c.provides is None or c.provides in needed
        )
        image = FirmwareImage(
            builds=builds, components=linked, hardware=self.hardware
        )

        mcu = self.hardware.mcu
        if image.total_fram_bytes > mcu.fram_bytes:
            raise StaticCheckError(
                f"image needs {image.total_fram_bytes} B of FRAM; the "
                f"MSP430FR5989 has {mcu.fram_bytes} B"
            )
        if image.total_sram_bytes > mcu.sram_bytes:
            raise StaticCheckError(
                f"image needs {image.total_sram_bytes} B of SRAM; the "
                f"MSP430FR5989 has {mcu.sram_bytes} B"
            )
        return image
