"""Static analysis of the device contracts (``python -m repro lint``).

The paper's constraints are *contracts*: the Simplified/Reduced tiers are
libm-free, the deployed classifier is fixed-point int32 on a 2 KB-SRAM
MSP430, and every experiment must replay bit-for-bit.  The runtime
enforces them dynamically (``RestrictedMath`` raises when unlinked libm
is touched) -- but only on the paths a given run happens to execute.
This package proves them at source level, before anything runs:

* :mod:`~repro.analysis.device_rules` -- **DEV001** (the static libm
  gate, fed by the same :data:`repro.amulet.restricted.LIBM_OPERATIONS`
  table the runtime gate uses) and **DEV002** (float ban in fixed-point
  code paths);
* :mod:`~repro.analysis.determinism` -- **DET001** (no unseeded or
  time-seeded RNG anywhere in the package);
* :mod:`~repro.analysis.overflow` -- **OVF001** (interval analysis
  proving the quantized accumulator cannot hit int32 saturation);
* :mod:`~repro.analysis.c_checker` -- **CGEN001..004** over the C source
  :meth:`~repro.ml.model_codegen.FixedPointLinearModel.to_c_source`
  emits (no floats, no libm, MSP430-friendly identifier and storage
  widths);
* :mod:`~repro.analysis.concurrency` -- **ASYNC001** (no blocking calls
  reachable from coroutines, with receiver tracking through the module
  call graph) and **ASYNC002** (no dropped coroutines or unreferenced
  fire-and-forget tasks);
* :mod:`~repro.analysis.isolation` -- **PROC001** (only picklable,
  ownerless values cross the fork boundary), **SHM001** (every
  SharedMemory/tempfile create has cleanup on all exit paths) and
  **RACE001** (no cross-context writes to module state without a lock);
* :mod:`~repro.analysis.sanitizer` -- the runtime twin of ASYNC001: a
  :class:`~repro.analysis.sanitizer.LoopStallSanitizer` that times every
  asyncio callback and fails tests on event-loop stalls;
* :mod:`~repro.analysis.engine` / :mod:`~repro.analysis.baseline` /
  :mod:`~repro.analysis.rules` -- the pluggable framework: a ``Rule``
  protocol, per-file ``Finding`` diagnostics, ``# lint: allow`` pragmas
  and a baseline file for grandfathered findings.

``python -m repro lint`` runs the whole set and is wired into CI as a
gate; see ``docs/ARCHITECTURE.md`` for the workflow.
"""

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.c_checker import (
    LIBM_C_FUNCTIONS,
    MAX_IDENTIFIER_LENGTH,
    check_c_source,
)
from repro.analysis.concurrency import (
    AsyncBlockingCallRule,
    AsyncTaskLeakRule,
)
from repro.analysis.determinism import DeterminismRule
from repro.analysis.device_rules import (
    DEVICE_PACKAGES,
    NUMPY_TRANSCENDENTALS,
    ORIGINAL_TIER_FUNCTIONS,
    DeviceFloatBanRule,
    DeviceLibmRule,
)
from repro.analysis.engine import Analyzer, module_name_for_path
from repro.analysis.findings import Finding, Severity
from repro.analysis.isolation import (
    CrossContextRaceRule,
    ForkBoundaryRule,
    SharedResourceCleanupRule,
)
from repro.analysis.overflow import (
    FixedPointOverflowRule,
    OverflowReport,
    accumulator_interval,
    analyze_model,
    quantize_range,
)
from repro.analysis.rules import (
    LintContext,
    Rule,
    all_rules,
    register_rule,
    rules_for_codes,
)
from repro.analysis.sanitizer import (
    LoopStall,
    LoopStallError,
    LoopStallSanitizer,
)

__all__ = [
    "Analyzer",
    "AsyncBlockingCallRule",
    "AsyncTaskLeakRule",
    "Baseline",
    "CrossContextRaceRule",
    "DEVICE_PACKAGES",
    "DeterminismRule",
    "ForkBoundaryRule",
    "DeviceFloatBanRule",
    "DeviceLibmRule",
    "Finding",
    "FixedPointOverflowRule",
    "LIBM_C_FUNCTIONS",
    "LintContext",
    "LoopStall",
    "LoopStallError",
    "LoopStallSanitizer",
    "MAX_IDENTIFIER_LENGTH",
    "NUMPY_TRANSCENDENTALS",
    "ORIGINAL_TIER_FUNCTIONS",
    "OverflowReport",
    "Rule",
    "Severity",
    "SharedResourceCleanupRule",
    "accumulator_interval",
    "all_rules",
    "analyze_model",
    "check_c_source",
    "fingerprint",
    "module_name_for_path",
    "quantize_range",
    "register_rule",
    "rules_for_codes",
]
