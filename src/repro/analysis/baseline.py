"""Baseline files: grandfathering pre-existing findings.

A baseline is a JSON snapshot of accepted findings.  Each finding is
fingerprinted by *content* (module-or-path, rule code, stripped source
line) rather than by line number, so unrelated edits that shift code
around do not resurrect grandfathered findings; the fingerprint carries a
count so two identical violations on different lines occupy two baseline
slots.  ``lint --write-baseline`` regenerates the file; the CI gate then
fails only on findings that are *new* relative to it.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = ["Baseline", "fingerprint"]

_FORMAT_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Content hash of a finding (path + code + offending line text)."""
    payload = "\x1f".join((finding.path, finding.code, finding.source_line))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Counter[str] | None = None) -> None:
        self._counts: Counter[str] = Counter(counts or {})

    def __len__(self) -> int:
        return sum(self._counts.values())

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(fingerprint(f) for f in findings))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts = data.get("findings", {})
        if not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in counts.items()
        ):
            raise ValueError(f"malformed baseline file {path}")
        return cls(Counter(counts))

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "findings": dict(sorted(self._counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def filter_new(self, findings: Sequence[Finding]) -> list[Finding]:
        """Findings not covered by the baseline (stable order preserved).

        Each baseline slot absorbs at most one matching finding, so adding
        a *second* identical violation to an already-baselined line still
        fails the gate.
        """
        remaining = Counter(self._counts)
        fresh: list[Finding] = []
        for finding in findings:
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        return fresh
