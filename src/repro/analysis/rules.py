"""The rule protocol, the rule registry and inline suppression pragmas.

A rule is any object with a ``code``, a ``description`` and a ``check``
method that maps a :class:`LintContext` (one parsed file) to findings.
Rules register themselves at import time through :func:`register_rule`,
so adding a rule is one module with one decorator -- the engine, the CLI
and the baseline machinery pick it up automatically.

Suppression works the way the Amulet firmware toolchain's own pragmas do:
a trailing ``# lint: allow CODE[,CODE...] -- reason`` comment silences
those codes on that line only.  The reason is not optional by convention
-- the repo-clean test keeps the repo at zero unexplained suppressions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.analysis.findings import Finding, Severity

__all__ = [
    "LintContext",
    "Rule",
    "all_rules",
    "register_rule",
    "rules_for_codes",
]

#: ``# lint: allow DEV001,DET001 -- models the physical sensor``
_PRAGMA = re.compile(r"#\s*lint:\s*allow\s+(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")


@dataclass
class LintContext:
    """Everything a rule may inspect about one file.

    Attributes
    ----------
    path:
        Display path for findings (repo-relative when possible).
    module:
        Dotted module name (``repro.sift_app.device_features``) or ``None``
        when the file is outside the package tree.  Scope-sensitive rules
        (DEV001, DEV002) key off this, which also lets tests lint fixture
        source under a pretended module name.
    source:
        Full text of the file.
    tree:
        Parsed AST of ``source``.
    """

    path: str
    module: str | None
    source: str
    tree: ast.Module
    _lines: list[str] = field(init=False, repr=False)
    _allowed: dict[int, frozenset[str]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.source.splitlines()
        self._allowed = _collect_pragmas(self._lines)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", module: str | None = None
    ) -> "LintContext":
        """Parse source text into a ready-to-lint context."""
        return cls(path=path, module=module, source=source, tree=ast.parse(source))

    def line_text(self, line: int) -> str:
        """The stripped text of a 1-based source line ('' out of range)."""
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether a pragma on ``line`` allows ``code``."""
        return code in self._allowed.get(line, frozenset())

    def finding(
        self,
        node: ast.AST | int,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col,
            code=code,
            message=message,
            severity=severity,
            source_line=self.line_text(line),
        )


def _collect_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    allowed: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "lint:" not in text:
            continue
        match = _PRAGMA.search(text)
        if match:
            codes = frozenset(
                code.strip() for code in match.group("codes").split(",")
            )
            allowed[number] = codes
    return allowed


@runtime_checkable
class Rule(Protocol):
    """The contract every analysis rule implements."""

    #: Stable diagnostic code, e.g. ``DEV001``.
    code: str
    #: One-line description shown by ``lint --list-rules``.
    description: str

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Yield findings for one parsed file."""
        ...


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_class: type) -> type:
    """Class decorator: instantiate and register a rule by its code."""
    rule = rule_class()
    if not isinstance(rule, Rule):
        raise TypeError(f"{rule_class.__name__} does not implement the Rule protocol")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rules_for_codes(codes: Iterable[str]) -> tuple[Rule, ...]:
    """Resolve rule codes, raising on unknown ones."""
    selected = []
    for code in codes:
        if code not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule code {code!r}; known rules: {known}")
        selected.append(_REGISTRY[code])
    return tuple(selected)
