"""The rule protocol, the rule registry and inline suppression pragmas.

A rule is any object with a ``code``, a ``description`` and a ``check``
method that maps a :class:`LintContext` (one parsed file) to findings.
Rules register themselves at import time through :func:`register_rule`,
so adding a rule is one module with one decorator -- the engine, the CLI
and the baseline machinery pick it up automatically.

Suppression works the way the Amulet firmware toolchain's own pragmas do:
a trailing ``# lint: allow CODE[,CODE...] -- reason`` comment silences
those codes on that line.  The reason is not optional by convention
-- the repo-clean test keeps the repo at zero unexplained suppressions.
Because a Python *statement* is the natural unit of intent, a pragma
anywhere inside a multi-line statement covers the whole statement, and a
pragma on any header line of a ``def``/``async def``/``class`` (its
decorators included) covers the header -- so a finding anchored at the
``def`` keyword can be silenced from the decorator line above it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.analysis.findings import Finding, Severity

__all__ = [
    "LintContext",
    "Rule",
    "all_rules",
    "register_rule",
    "rules_for_codes",
]

#: ``# lint: allow DEV001,DET001 -- models the physical sensor``
_PRAGMA = re.compile(r"#\s*lint:\s*allow\s+(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")


@dataclass
class LintContext:
    """Everything a rule may inspect about one file.

    Attributes
    ----------
    path:
        Display path for findings (repo-relative when possible).
    module:
        Dotted module name (``repro.sift_app.device_features``) or ``None``
        when the file is outside the package tree.  Scope-sensitive rules
        (DEV001, DEV002) key off this, which also lets tests lint fixture
        source under a pretended module name.
    source:
        Full text of the file.
    tree:
        Parsed AST of ``source``.
    """

    path: str
    module: str | None
    source: str
    tree: ast.Module
    _lines: list[str] = field(init=False, repr=False)
    _allowed: dict[int, frozenset[str]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.source.splitlines()
        self._allowed = _collect_pragmas(self._lines)
        _spread_pragmas_over_statements(self.tree, self._allowed)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", module: str | None = None
    ) -> "LintContext":
        """Parse source text into a ready-to-lint context."""
        return cls(path=path, module=module, source=source, tree=ast.parse(source))

    def line_text(self, line: int) -> str:
        """The stripped text of a 1-based source line ('' out of range)."""
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether a pragma on ``line`` allows ``code``."""
        return code in self._allowed.get(line, frozenset())

    def finding(
        self,
        node: ast.AST | int,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col,
            code=code,
            message=message,
            severity=severity,
            source_line=self.line_text(line),
        )


def _collect_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    allowed: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "lint:" not in text:
            continue
        match = _PRAGMA.search(text)
        if match:
            codes = frozenset(
                code.strip() for code in match.group("codes").split(",")
            )
            allowed[number] = codes
    return allowed


def _statement_spans(tree: ast.Module) -> Iterable[tuple[int, int]]:
    """(first, last) line of every statement's *own* text.

    For simple statements that is the full node extent -- a call broken
    over four lines is one span.  For compound statements (``def``,
    ``class``, ``if``, ``with``, ...) it is only the header: decorators
    plus the lines up to where the first body statement starts, so a
    pragma inside the body never leaks onto the header or vice versa
    (the body's statements get their own spans).
    """
    compound = (
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.ClassDef,
        ast.If,
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.With,
        ast.AsyncWith,
        ast.Try,
        ast.Match,
    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, compound):
            start = node.lineno
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min(start, min(d.lineno for d in decorators))
            body = getattr(node, "body", [])
            end = body[0].lineno - 1 if body else node.lineno
            yield start, max(start, end)
        else:
            yield node.lineno, getattr(node, "end_lineno", None) or node.lineno


def _spread_pragmas_over_statements(
    tree: ast.Module, allowed: dict[int, frozenset[str]]
) -> None:
    """Extend line-scoped pragmas to the statement they sit in.

    A pragma on *any* line of a statement span silences its codes on
    *every* line of that span, so multi-line calls and decorated
    ``async def`` headers behave like the single-line case.  Mutates
    ``allowed`` in place; lines outside any statement (blank, comment)
    keep their line-only scope.
    """
    if not allowed:
        return
    pragma_lines = sorted(allowed)
    for start, end in _statement_spans(tree):
        if end <= start:
            continue
        span_codes = frozenset().union(
            *(allowed[line] for line in pragma_lines if start <= line <= end)
        )
        if not span_codes:
            continue
        for line in range(start, end + 1):
            allowed[line] = allowed.get(line, frozenset()) | span_codes


@runtime_checkable
class Rule(Protocol):
    """The contract every analysis rule implements."""

    #: Stable diagnostic code, e.g. ``DEV001``.
    code: str
    #: One-line description shown by ``lint --list-rules``.
    description: str

    def check(self, context: LintContext) -> Iterable[Finding]:
        """Yield findings for one parsed file."""
        ...


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_class: type) -> type:
    """Class decorator: instantiate and register a rule by its code."""
    rule = rule_class()
    if not isinstance(rule, Rule):
        raise TypeError(f"{rule_class.__name__} does not implement the Rule protocol")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rules_for_codes(codes: Iterable[str]) -> tuple[Rule, ...]:
    """Resolve rule codes (or family prefixes), raising on unknown ones.

    An exact code selects one rule; a bare family prefix -- the code
    with its digits stripped, e.g. ``ASYNC`` or ``DEV`` -- selects every
    registered rule of that family, so ``--rules ASYNC,PROC`` tracks new
    family members without the CI invocation changing.
    """
    selected: dict[str, Rule] = {}
    for code in codes:
        if code in _REGISTRY:
            selected[code] = _REGISTRY[code]
            continue
        members = [
            known
            for known in _REGISTRY
            if known.startswith(code) and known[len(code) :].isdigit()
        ]
        if not members:
            known_codes = ", ".join(sorted(_REGISTRY))
            raise KeyError(
                f"unknown rule code {code!r}; known rules: {known_codes}"
            )
        for member in members:
            selected[member] = _REGISTRY[member]
    return tuple(selected[code] for code in sorted(selected))
