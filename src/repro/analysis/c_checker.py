"""The C-codegen checker: contract lints over emitted MSP430 C source.

``FixedPointLinearModel.to_c_source`` emits the MLClassifier decision
function a developer pastes into the QM model.  Nothing used to look at
that artifact; this checker parses it (a comment/string-aware tokenizer
-- the subset of C the generator emits needs no more) and enforces the
Simplified/Reduced deployment contract:

* **CGEN001** -- no floating-point types (``double``/``float``): the
  MSP430 has no FPU and the fixed-point builds link no soft-float;
* **CGEN002** -- no libm calls (``sqrt``/``atan2``/``exp``/... and their
  ``f`` variants): the fixed-point builds do not link libm;
* **CGEN003** -- identifiers at most 31 significant characters, the
  portable-C width embedded toolchains guarantee;
* **CGEN004** -- no 64-bit *storage*: ``int64_t``/``long long`` may
  appear only as the cast in the multiply intermediate
  (``(int64_t)w * x``), never as a declared variable or array type --
  64-bit locals blow the 2 KB SRAM budget and every access becomes a
  multi-word software sequence.

Two profiles share the rule set.  The default ``"device"`` profile is
the MSP430 contract above.  The ``"native"`` profile covers the
gateway-side generated-C hot path (:mod:`repro.native.codegen`), which
runs on the host in ``double`` precision: CGEN001 there bans only
``float`` (a ``float`` token would silently round the bit-parity
contract away) and CGEN002 allowlists ``sqrt`` (the one libm call the
float64 reference semantics require); CGEN003/CGEN004 apply unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.amulet.restricted import LIBM_OPERATIONS
from repro.analysis.findings import Finding, Severity

__all__ = [
    "C_CHECK_PROFILES",
    "LIBM_C_FUNCTIONS",
    "MAX_IDENTIFIER_LENGTH",
    "CToken",
    "check_c_source",
    "tokenize_c",
]

#: Portable identifier significance limit (C89 external linkage is 6 on
#: paper, but 31 is what embedded toolchains -- and the Amulet's -- honour).
MAX_IDENTIFIER_LENGTH = 31

#: libm entry points the checker rejects.  Seeded from the canonical
#: :data:`repro.amulet.restricted.LIBM_OPERATIONS` gate table (plus the C
#: float variants and the rest of <math.h> the generator must never emit).
LIBM_C_FUNCTIONS: frozenset[str] = frozenset(
    {name for name in LIBM_OPERATIONS}
    | {name + "f" for name in LIBM_OPERATIONS}
    | {
        "pow",
        "powf",
        "sin",
        "sinf",
        "cos",
        "cosf",
        "tan",
        "tanf",
        "atan",
        "atanf",
        "asin",
        "acos",
        "log",
        "logf",
        "log2",
        "log10",
        "exp2",
        "expm1",
        "log1p",
        "fabs",
        "fabsf",
        "fmod",
        "fmodf",
        "hypot",
        "hypotf",
        "cbrt",
        "cbrtf",
        "ceil",
        "ceilf",
        "floor",
        "floorf",
        "round",
        "roundf",
    }
)

_FLOAT_TYPES: frozenset[str] = frozenset({"double", "float"})
_WIDE_TYPES: frozenset[str] = frozenset({"int64_t", "uint64_t"})

#: Per-profile rule parameters: which type tokens CGEN001 bans, which
#: libm calls CGEN002 tolerates, and how the messages justify themselves.
C_CHECK_PROFILES: dict[str, dict] = {
    "device": {
        "banned_float_types": _FLOAT_TYPES,
        "libm_allowed": frozenset(),
        "float_reason": (
            "the MSP430 fixed-point builds have no FPU and link no "
            "soft-float support"
        ),
        "libm_reason": (
            "the Simplified/Reduced builds do not link the C math library"
        ),
    },
    "native": {
        "banned_float_types": frozenset({"float"}),
        "libm_allowed": frozenset({"sqrt"}),
        "float_reason": (
            "the native hot path is double-precision end to end; a "
            "'float' would round away the bit-parity contract"
        ),
        "libm_reason": (
            "the native hot path may call only 'sqrt' from libm -- "
            "every other transcendental must reproduce NumPy bit-for-bit "
            "and goes through the vetted SVML entry points instead"
        ),
    },
}

_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|0[xX][0-9a-fA-F]+|\d+\.?\d*|\S")


@dataclass(frozen=True)
class CToken:
    """One lexical token with its 1-based line and 0-based column."""

    text: str
    line: int
    col: int

    @property
    def is_identifier(self) -> bool:
        return bool(re.match(r"^[A-Za-z_]", self.text))


def _blank_comments_and_strings(source: str) -> str:
    """Replace comments and string/char literals with spaces, keeping layout."""
    out = list(source)
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            end = n if end == -1 else end + 2
            for j in range(i, end):
                if out[j] != "\n":
                    out[j] = " "
            i = end
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            end = source.find("\n", i)
            end = n if end == -1 else end
            for j in range(i, end):
                out[j] = " "
            i = end
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                j += 2 if source[j] == "\\" else 1
            end = min(j + 1, n)
            for k in range(i, end):
                if out[k] != "\n":
                    out[k] = " "
            i = end
        else:
            i += 1
    return "".join(out)


def tokenize_c(source: str) -> list[CToken]:
    """Tokenize C source with comments and literals already blanked."""
    blanked = _blank_comments_and_strings(source)
    tokens: list[CToken] = []
    for line_number, line in enumerate(blanked.splitlines(), start=1):
        for match in _TOKEN.finditer(line):
            tokens.append(CToken(match.group(), line_number, match.start()))
    return tokens


def check_c_source(
    source: str, path: str = "<generated>", profile: str = "device"
) -> list[Finding]:
    """Run every CGEN rule over one C translation unit.

    ``profile`` selects the deployment contract: ``"device"`` (the
    MSP430 rules, the default) or ``"native"`` (the gateway-side
    generated-C hot path; see the module docstring).
    """
    if profile not in C_CHECK_PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(C_CHECK_PROFILES)}, got {profile!r}"
        )
    tokens = tokenize_c(source)
    findings = list(_check_tokens(tokens, path, C_CHECK_PROFILES[profile]))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _finding(token: CToken, path: str, code: str, message: str) -> Finding:
    return Finding(
        path=path,
        line=token.line,
        col=token.col,
        code=code,
        message=message,
        severity=Severity.ERROR,
        source_line=token.text,
    )


def _check_tokens(
    tokens: list[CToken], path: str, profile: dict
) -> Iterator[Finding]:
    for index, token in enumerate(tokens):
        nxt = tokens[index + 1] if index + 1 < len(tokens) else None
        prev = tokens[index - 1] if index > 0 else None
        if token.text in profile["banned_float_types"]:
            yield _finding(
                token,
                path,
                "CGEN001",
                f"floating-point type '{token.text}' in generated C -- "
                + profile["float_reason"],
            )
        elif (
            token.is_identifier
            and token.text in LIBM_C_FUNCTIONS
            and token.text not in profile["libm_allowed"]
        ):
            if nxt is not None and nxt.text == "(":
                yield _finding(
                    token,
                    path,
                    "CGEN002",
                    f"libm call '{token.text}()' in generated C -- "
                    + profile["libm_reason"],
                )
        elif token.is_identifier and len(token.text) > MAX_IDENTIFIER_LENGTH:
            yield _finding(
                token,
                path,
                "CGEN003",
                f"identifier '{token.text}' is {len(token.text)} characters; "
                f"embedded toolchains guarantee only {MAX_IDENTIFIER_LENGTH} "
                "significant characters",
            )
        if token.text in _WIDE_TYPES or (
            token.text == "long" and nxt is not None and nxt.text == "long"
        ):
            if not _is_cast(tokens, index):
                yield _finding(
                    token,
                    path,
                    "CGEN004",
                    f"64-bit storage type '{token.text}' in generated C -- "
                    "only the (int64_t) multiply-intermediate cast is "
                    "allowed; 64-bit locals do not fit the 2 KB SRAM "
                    "budget",
                )
        elif token.text == "long" and prev is not None and prev.text == "long":
            continue  # second half of 'long long', already reported


def _is_cast(tokens: list[CToken], index: int) -> bool:
    """Whether the wide type at ``index`` is a ``(type)`` cast expression."""
    before = tokens[index - 1] if index > 0 else None
    token = tokens[index]
    after_index = index + 1
    if token.text == "long":  # possibly 'long long'
        while after_index < len(tokens) and tokens[after_index].text == "long":
            after_index += 1
    after = tokens[after_index] if after_index < len(tokens) else None
    return before is not None and before.text == "(" and after is not None and after.text == ")"
