"""Implementation of ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the argparse surface there stays a
thin dispatcher.  The exit code contract is what CI keys off: 0 when the
tree is clean (or every finding is baselined), 1 when new findings exist,
2 on usage or I/O errors (unknown rule, missing path, unreadable file,
git failure under ``--changed-only``) -- a wrapper script can therefore
tell "the tree is dirty" from "the lint run itself is broken".

``--changed-only [REF]`` is the incremental path for pre-commit hooks
and CI: only files that differ from the git ref (default ``HEAD``),
plus untracked files, are linted -- the rule set is per-file, so the
subset's findings are exactly what a full run would report for those
files.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Sequence, TextIO

import repro
from repro.analysis.baseline import Baseline
from repro.analysis.c_checker import C_CHECK_PROFILES, check_c_source
from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding
from repro.analysis.rules import all_rules, rules_for_codes

__all__ = ["add_lint_arguments", "default_lint_root", "run_lint"]


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (what CI lints)."""
    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits one object with a findings array)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="CODE,CODE",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline JSON of grandfathered findings to subtract",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--check-c",
        type=Path,
        default=None,
        metavar="FILE",
        help="also run the C-codegen checker over an emitted .c file",
    )
    parser.add_argument(
        "--c-profile",
        choices=sorted(C_CHECK_PROFILES),
        default="device",
        help="which deployment contract --check-c enforces: 'device' "
        "(MSP430 fixed-point, the default) or 'native' (the gateway-side "
        "double-precision hot path)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only files differing from a git ref (default: HEAD), "
        "plus untracked files; exits 2 if git fails",
    )


def _git_changed_files(ref: str) -> list[Path] | None:
    """Python files changed vs ``ref`` plus untracked ones, absolute.

    Returns ``None`` when git itself fails (not a repository, unknown
    ref) -- the caller maps that to exit code 2, not to "no findings".
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        changed = subprocess.run(
            ["git", "diff", "--name-only", ref, "--", "*.py"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
    except (OSError, subprocess.CalledProcessError) as error:
        detail = getattr(error, "stderr", "") or str(error)
        print(f"error: --changed-only: git failed: {detail.strip()}", file=sys.stderr)
        return None
    root = Path(top)
    files = {root / name for name in changed + untracked if name.strip()}
    return sorted(path for path in files if path.exists())


def _restrict_to_changed(paths: list[Path], ref: str) -> list[Path] | None:
    """The subset of ``paths`` (files, or files under directories) that
    git says changed vs ``ref``; ``None`` on git failure."""
    changed = _git_changed_files(ref)
    if changed is None:
        return None
    roots = [path.resolve() for path in paths]
    selected: list[Path] = []
    for file in changed:
        resolved = file.resolve()
        for root in roots:
            if resolved == root or root in resolved.parents:
                selected.append(file)
                break
    return selected


def _render_text(findings: Sequence[Finding], stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
        if finding.source_line:
            print(f"    {finding.source_line}", file=stream)


def _render_json(
    findings: Sequence[Finding], baselined: int, stream: TextIO
) -> None:
    payload = {
        "version": 1,
        "tool": "repro-lint",
        "findings": [finding.as_dict() for finding in findings],
        "count": len(findings),
        "baselined": baselined,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def run_lint(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute the lint command; returns the process exit code."""
    stream = stream if stream is not None else sys.stdout

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}: {rule.description}", file=stream)
        return 0

    if args.rules is not None:
        try:
            rules = rules_for_codes(
                code.strip() for code in args.rules.split(",") if code.strip()
            )
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        rules = all_rules()

    paths = [Path(p) for p in args.paths] if args.paths else [default_lint_root()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    if getattr(args, "changed_only", None) is not None:
        restricted = _restrict_to_changed(paths, args.changed_only)
        if restricted is None:
            return 2
        paths = restricted

    analyzer = Analyzer(rules)
    try:
        findings = analyzer.lint_paths(paths)
    except (OSError, UnicodeDecodeError) as error:
        print(f"error: cannot read source: {error}", file=sys.stderr)
        return 2

    if args.check_c is not None:
        if not args.check_c.exists():
            print(f"error: no such path: {args.check_c}", file=sys.stderr)
            return 2
        findings.extend(
            check_c_source(
                args.check_c.read_text(),
                path=str(args.check_c),
                profile=getattr(args, "c_profile", "device"),
            )
        )

    if args.write_baseline:
        if args.baseline is None:
            print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        Baseline.from_findings(findings).save(args.baseline)
        print(
            f"wrote baseline with {len(findings)} finding(s) to {args.baseline}",
            file=stream,
        )
        return 0

    baselined = 0
    if args.baseline is not None and args.baseline.exists():
        baseline = Baseline.load(args.baseline)
        fresh = baseline.filter_new(findings)
        baselined = len(findings) - len(fresh)
        findings = fresh

    if args.format == "json":
        _render_json(findings, baselined, stream)
    else:
        _render_text(findings, stream)
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(
            f"repro-lint: {len(findings)} finding(s) in "
            f"{len(paths)} path(s){suffix}",
            file=stream,
        )
    return 1 if findings else 0
