"""Process-isolation contracts: the fork/pickle boundary (PROC001),
shared-resource cleanup (SHM001) and cross-context races (RACE001).

The supervised scoring child, the cohort runner's ``ProcessPoolExecutor``
and the shared-memory dataplane all cross a process boundary, and each
crossing has an invariant the type system cannot see:

* **PROC001** -- everything submitted to another process is pickled.
  Lambdas and closures (functions defined inside the submitting
  function) fail at submit time with an opaque ``PicklingError``;
  locks, open file handles and ``SharedMemory`` objects are worse --
  some pickle *incorrectly* (a lock arrives unlocked and unrelated to
  the original).  The rule flags those argument categories at the
  submit site (``.submit`` / ``.apply_async`` / ``Process(target=...,
  args=...)``), where the fix is obvious: pass module-level functions
  and plain data, resolve handles child-side (the dataplane attaches by
  *name* for exactly this reason).
* **SHM001** -- a ``SharedMemory(create=True)`` segment outlives its
  creator unless unlinked; a ``mkstemp``/``delete=False`` tempfile
  outlives the run unless removed.  Every create must carry cleanup
  evidence *in the same function or class*: a ``try/finally`` or an
  except-and-reraise that closes/unlinks (directly or through a helper
  whose body does), a ``weakref.finalize`` registration, or an
  ``atexit`` hook.  This is the leak-proofness PR 5 promised, as a
  lint.
* **RACE001** -- module-level mutable state written both from event-loop
  context (inside an ``async def``) and from worker context (a thread
  target, a child entry point) without holding a visible
  ``threading.Lock`` is a data race today or after the next refactor.
  A documented single-writer design is pragma'd where the state lives:
  ``# lint: allow RACE001 -- single writer: <who>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import LintContext, register_rule

__all__ = [
    "ForkBoundaryRule",
    "SharedResourceCleanupRule",
    "CrossContextRaceRule",
]

#: Attribute-call names that ship work to another process.
_SUBMIT_METHODS: frozenset[str] = frozenset({"submit", "apply_async"})

#: Constructor names for lock-like objects (unpicklable-by-meaning).
_LOCK_CONSTRUCTORS: frozenset[str] = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition", "Event"}
)

#: Method names that count as releasing a shared resource.
_CLEANUP_METHODS: frozenset[str] = frozenset(
    {"close", "unlink", "remove", "cleanup", "release"}
)

#: Mutable-container constructors for RACE001's module-state table.
_MUTABLE_CONSTRUCTORS: frozenset[str] = frozenset(
    {"dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict"}
)

#: Mutating method names on a container.
_MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "appendleft",
    }
)


def _call_name(call: ast.Call) -> str | None:
    """The rightmost name of the call target (``a.b.c()`` -> ``c``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_shared_memory_create(call: ast.Call) -> bool:
    if _call_name(call) != "SharedMemory":
        return False
    for keyword in call.keywords:
        if keyword.arg == "create" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _is_orphan_tempfile_create(call: ast.Call) -> tuple[bool, str]:
    """(creates-an-unmanaged-file, what) for mkstemp/NamedTemporaryFile."""
    name = _call_name(call)
    if name == "mkstemp":
        return True, "tempfile.mkstemp()"
    if name == "NamedTemporaryFile":
        for keyword in call.keywords:
            if (
                keyword.arg == "delete"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return True, "NamedTemporaryFile(delete=False)"
    return False, ""


@register_rule
class ForkBoundaryRule:
    """PROC001: only picklable, ownerless values cross the fork boundary."""

    code = "PROC001"
    description = (
        "arguments shipped to another process (.submit/.apply_async/"
        "Process(target=..., args=...)) must not be lambdas, closures, "
        "locks, open file handles or SharedMemory objects -- pass "
        "module-level callables and plain data, attach handles child-side"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for scope in self._scopes(context.tree):
            nested = {
                node.name
                for node in ast.walk(scope)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not scope
            }
            unpicklable = self._unpicklable_bindings(scope)
            for call in (
                node for node in ast.walk(scope) if isinstance(node, ast.Call)
            ):
                yield from self._check_submit(context, call, nested, unpicklable)

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _unpicklable_bindings(scope: ast.AST) -> dict[str, str]:
        """Names bound in this scope to values that must not be pickled."""
        bindings: dict[str, str] = {}
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            name = _call_name(node.value)
            what: str | None = None
            if name in _LOCK_CONSTRUCTORS:
                what = f"a threading/multiprocessing {name}"
            elif name == "open":
                what = "an open file handle"
            elif name == "SharedMemory":
                what = "a SharedMemory handle (attach by name child-side)"
            if what is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = what
        return bindings

    def _check_submit(
        self,
        context: LintContext,
        call: ast.Call,
        nested: set[str],
        unpicklable: dict[str, str],
    ) -> Iterator[Finding]:
        shipped = self._shipped_arguments(call)
        if shipped is None:
            return
        for argument in shipped:
            if isinstance(argument, ast.Lambda):
                yield context.finding(
                    argument,
                    self.code,
                    "lambda crosses the fork boundary -- lambdas cannot be "
                    "pickled; use a module-level function",
                )
            elif isinstance(argument, ast.Name):
                if argument.id in nested:
                    yield context.finding(
                        argument,
                        self.code,
                        f"closure {argument.id}() crosses the fork boundary "
                        "-- functions defined inside a function cannot be "
                        "pickled; hoist it to module level",
                    )
                elif argument.id in unpicklable:
                    yield context.finding(
                        argument,
                        self.code,
                        f"{unpicklable[argument.id]} crosses the fork "
                        "boundary -- it does not pickle meaningfully",
                    )

    @staticmethod
    def _shipped_arguments(call: ast.Call) -> list[ast.expr] | None:
        """The expressions pickled by this call, or ``None`` if it is not
        a process-boundary call site."""
        name = _call_name(call)
        if name in _SUBMIT_METHODS and isinstance(call.func, ast.Attribute):
            shipped = list(call.args)
            for keyword in call.keywords:
                if keyword.arg is not None:
                    shipped.append(keyword.value)
            return shipped
        if name == "Process":
            shipped = []
            for keyword in call.keywords:
                if keyword.arg == "target":
                    shipped.append(keyword.value)
                elif keyword.arg in ("args", "kwargs") and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    shipped.extend(keyword.value.elts)
            return shipped
        return None


@register_rule
class SharedResourceCleanupRule:
    """SHM001: every segment/file create has cleanup on all exit paths."""

    code = "SHM001"
    description = (
        "SharedMemory(create=True), mkstemp and delete=False tempfile "
        "creates must carry cleanup evidence in the same function or "
        "class: try/finally or except+reraise that closes/unlinks, a "
        "weakref.finalize registration, or an atexit hook"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        helpers = self._cleanup_helpers(context.tree)
        for scope, owner in self._scopes_with_owner(context.tree):
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                what = None
                if _is_shared_memory_create(node):
                    what = "SharedMemory(create=True)"
                else:
                    is_temp, temp_what = _is_orphan_tempfile_create(node)
                    if is_temp:
                        what = temp_what
                if what is None:
                    continue
                if self._has_cleanup_evidence(scope, owner, helpers):
                    continue
                yield context.finding(
                    node,
                    self.code,
                    f"{what} without cleanup on all exit paths -- the "
                    "segment/file outlives this process unless a "
                    "try/finally, except+reraise, weakref.finalize or "
                    "atexit hook closes and unlinks it",
                )

    @staticmethod
    def _scopes_with_owner(
        tree: ast.Module,
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, None
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield item, node

    @staticmethod
    def _cleanup_helpers(tree: ast.Module) -> set[str]:
        """Module functions whose body visibly releases a resource."""
        helpers: set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
                if _call_name(call) in _CLEANUP_METHODS:
                    helpers.add(node.name)
                    break
        return helpers

    def _has_cleanup_evidence(
        self,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ast.ClassDef | None,
        helpers: set[str],
    ) -> bool:
        if self._scope_has_local_evidence(scope, helpers):
            return True
        if owner is not None:
            # The handle escapes into the instance; a close/__del__/
            # cleanup method (or a finalize registration anywhere in the
            # class) is the class-level exit path.
            for item in owner.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item is scope:
                    continue
                if item.name in ("close", "__del__", "__exit__", "cleanup", "stop"):
                    if self._calls_cleanup(item, helpers):
                        return True
                if self._registers_finalizer(item):
                    return True
            if self._registers_finalizer(scope):
                return True
        return False

    def _scope_has_local_evidence(
        self, scope: ast.AST, helpers: set[str]
    ) -> bool:
        if self._registers_finalizer(scope):
            return True
        for node in ast.walk(scope):
            if not isinstance(node, ast.Try):
                continue
            if node.finalbody and self._region_calls_cleanup(
                node.finalbody, helpers
            ):
                return True
            for handler in node.handlers:
                has_reraise = any(
                    isinstance(n, ast.Raise) for n in ast.walk(handler)
                )
                if has_reraise and self._region_calls_cleanup(
                    handler.body, helpers
                ):
                    return True
        return False

    @staticmethod
    def _registers_finalizer(scope: ast.AST) -> bool:
        for call in (n for n in ast.walk(scope) if isinstance(n, ast.Call)):
            name = _call_name(call)
            if name == "finalize":
                return True
            if name == "register" and isinstance(call.func, ast.Attribute):
                receiver = call.func.value
                if isinstance(receiver, ast.Name) and receiver.id == "atexit":
                    return True
        return False

    def _calls_cleanup(self, scope: ast.AST, helpers: set[str]) -> bool:
        return self._region_calls_cleanup(
            [n for n in ast.walk(scope) if isinstance(n, ast.stmt)], helpers
        )

    @staticmethod
    def _region_calls_cleanup(
        statements: list[ast.stmt], helpers: set[str]
    ) -> bool:
        for statement in statements:
            for call in (
                n for n in ast.walk(statement) if isinstance(n, ast.Call)
            ):
                name = _call_name(call)
                if name in _CLEANUP_METHODS or name in helpers:
                    return True
        return False


@register_rule
class CrossContextRaceRule:
    """RACE001: module state shared across execution contexts needs a lock."""

    code = "RACE001"
    description = (
        "module-level mutable state written from both event-loop context "
        "(async def) and worker context (thread target / child entry "
        "point) must be mutated under a threading.Lock, or carry a "
        "single-writer pragma where the state is defined"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if "async" not in context.source:
            return
        state = {
            name
            for name, line in self._module_state(context.tree).items()
            # A single-writer pragma where the state is *defined* blesses
            # every write site at once -- the design decision lives in
            # one place, not sprinkled over each mutation.
            if not context.is_suppressed(line, self.code)
        }
        if not state:
            return
        locks = self._module_locks(context.tree)
        worker_functions = self._worker_functions(context.tree)
        writes: dict[str, dict[str, list[ast.AST]]] = {}
        for function, is_async in self._functions_with_context(context.tree):
            if is_async:
                kind = "async"
            elif function.name in worker_functions:
                kind = "worker"
            else:
                continue
            for name, node in self._unlocked_writes(function, state, locks):
                writes.setdefault(name, {}).setdefault(kind, []).append(node)
        for name, by_kind in sorted(writes.items()):
            if "async" not in by_kind or "worker" not in by_kind:
                continue
            for node in by_kind["async"] + by_kind["worker"]:
                yield context.finding(
                    node,
                    self.code,
                    f"module-level mutable {name!r} is written from both "
                    "event-loop and worker context without a lock -- hold "
                    "a threading.Lock around every write, or document the "
                    "single-writer design with a pragma at the definition",
                )

    @staticmethod
    def _module_state(tree: ast.Module) -> dict[str, int]:
        """Module-level mutable bindings, name -> definition line."""
        state: dict[str, int] = {}
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and _call_name(value) in _MUTABLE_CONSTRUCTORS
            )
            if not is_mutable:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    state[target.id] = node.lineno
        return state

    @staticmethod
    def _module_locks(tree: ast.Module) -> set[str]:
        locks: set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            if _call_name(node.value) in ("Lock", "RLock"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        locks.add(target.id)
        return locks

    @staticmethod
    def _worker_functions(tree: ast.Module) -> set[str]:
        """Functions that execute off the event loop: thread/process
        targets and child entry points (``*_child_main`` by convention)."""
        workers: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name.endswith(
                "_child_main"
            ):
                workers.add(node.name)
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            takes_target = name in ("Thread", "Process") or name in _SUBMIT_METHODS
            if not takes_target:
                continue
            candidates: list[ast.expr] = []
            if name in _SUBMIT_METHODS and node.args:
                candidates.append(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append(keyword.value)
            for candidate in candidates:
                if isinstance(candidate, ast.Name):
                    workers.add(candidate.id)
        return workers

    @staticmethod
    def _functions_with_context(
        tree: ast.Module,
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield node, True
            elif isinstance(node, ast.FunctionDef):
                yield node, False

    def _unlocked_writes(
        self,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        state: set[str],
        locks: set[str],
    ) -> Iterator[tuple[str, ast.AST]]:
        locked_spans: list[tuple[int, int]] = []
        for node in ast.walk(function):
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id in locks:
                        end = getattr(node, "end_lineno", node.lineno)
                        locked_spans.append((node.lineno, end))
        def is_locked(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(start <= line <= end for start, end in locked_spans)

        for node in ast.walk(function):
            target_name: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if target.value.id in state:
                            target_name = target.value.id
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in state
                    and node.func.attr in _MUTATING_METHODS
                ):
                    target_name = receiver.id
            if target_name is not None and not is_locked(node):
                yield target_name, node
