"""Event-loop contracts: the blocking-call gate (ASYNC001) and the
task-leak lint (ASYNC002).

The ingestion gateway's latency story rests on one invariant: nothing
on the event loop blocks.  A single ``time.sleep`` or fsync inside a
coroutine stalls *every* wearer's verdict stream at once -- exactly the
failure mode the p99 bench-gate guards, but invisible to it until the
regression has shipped.  ASYNC001 is the static version of that
invariant, built the way DEV001 shadows ``RestrictedMath``'s runtime
gate: a table of known-blocking calls, plus *receiver tracking* through
the module's own call graph, so a blocking call wrapped in a sync helper
is still caught at the ``async def`` that reaches it.

What counts as blocking (the table, not a heuristic):

* ``time.sleep`` and ``from time import sleep`` (``asyncio.sleep`` is
  awaited, and awaited calls are never flagged -- awaiting *is* the
  yield);
* ``os.fsync`` / ``os.fdatasync`` / ``os.sync``;
* any call through a ``subprocess`` module alias;
* synchronous file I/O: bare ``open(...)``, ``Path.read_text`` /
  ``write_text`` / ``read_bytes`` / ``write_bytes``;
* ``Lock.acquire()`` on a lock the module visibly constructed via
  ``threading`` (``asyncio`` lock acquires are awaited, so they pass);
* ``SharedMemory(...)`` construction (page allocation + /dev/shm I/O);
* the snapshot store's durability points, ``.write_epoch(...)`` and
  ``.compact(...)`` -- each hides an fsync.

Receiver tracking: a sync function or method containing a blocking call
is itself blocking; blocking-ness propagates through bare-name calls and
``self.``-method calls to a fixed point, and an ``async def`` calling a
transitively blocking in-module helper is flagged at the call site.
Passing the helper *by reference* to ``asyncio.to_thread`` / an executor
is the sanctioned fix and is not a call, so it never trips the rule.

ASYNC002 catches the two ways a coroutine object dies silently: calling
an in-module ``async def`` as a bare expression statement (the coroutine
is created, never awaited, never scheduled), and a fire-and-forget
``create_task`` / ``ensure_future`` whose task object is discarded --
asyncio holds only a weak reference to running tasks, so an exception in
one is swallowed and the task itself may be garbage-collected mid-flight.
Keep a reference or attach a done-callback.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import LintContext, register_rule

__all__ = [
    "BLOCKING_DURABILITY_METHODS",
    "BLOCKING_OS_FUNCTIONS",
    "BLOCKING_PATH_METHODS",
    "AsyncBlockingCallRule",
    "AsyncTaskLeakRule",
]

#: ``os.<attr>`` calls that block on storage.
BLOCKING_OS_FUNCTIONS: frozenset[str] = frozenset({"fsync", "fdatasync", "sync"})

#: ``Path`` (or file-ish receiver) methods that perform whole-file I/O.
BLOCKING_PATH_METHODS: frozenset[str] = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Methods whose contract *is* a durable (fsynced) write: the snapshot
#: store's commit points.  Attribute calls by these names block by
#: design, whoever the receiver is.
BLOCKING_DURABILITY_METHODS: frozenset[str] = frozenset(
    {"write_epoch", "compact"}
)


class _ConcurrencyImports:
    """Module aliases and members the blocking table keys off."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_modules: set[str] = set()
        self.os_modules: set[str] = set()
        self.subprocess_modules: set[str] = set()
        self.threading_modules: set[str] = set()
        self.asyncio_modules: set[str] = set()
        #: local name -> blocking origin ("sleep", "fsync", ...).
        self.blocking_members: dict[str, str] = {}
        #: local names bound to the SharedMemory class.
        self.shared_memory_names: set[str] = set()
        #: local names bound to threading's lock constructors.
        self.lock_constructors: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "os":
                        self.os_modules.add(local)
                    elif alias.name == "subprocess":
                        self.subprocess_modules.add(local)
                    elif alias.name == "threading":
                        self.threading_modules.add(local)
                    elif alias.name == "asyncio":
                        self.asyncio_modules.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "sleep":
                            self.blocking_members[alias.asname or alias.name] = "sleep"
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name in BLOCKING_OS_FUNCTIONS:
                            self.blocking_members[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "multiprocessing.shared_memory":
                    for alias in node.names:
                        if alias.name == "SharedMemory":
                            self.shared_memory_names.add(alias.asname or alias.name)
                elif node.module == "threading":
                    for alias in node.names:
                        if alias.name in ("Lock", "RLock", "Semaphore", "Condition"):
                            self.lock_constructors.add(alias.asname or alias.name)


def _tracked_lock_names(tree: ast.Module, imports: _ConcurrencyImports) -> set[str]:
    """Names the module visibly binds to a ``threading`` lock object."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        is_lock = (
            isinstance(func, ast.Name) and func.id in imports.lock_constructors
        ) or (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.threading_modules
            and func.attr in ("Lock", "RLock", "Semaphore", "Condition")
        )
        if not is_lock:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)  # self._lock = threading.Lock()
    return names


def _receiver_chain(func: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; ``None`` for non-name chains."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _iter_own_calls(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.Call, bool]]:
    """Every Call in the function's own body (nested defs excluded),
    tagged with whether it sits under an ``await`` / ``async with`` /
    ``async for`` -- i.e. whether executing it yields the loop."""

    def walk(node: ast.AST, awaited: bool) -> Iterator[tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # a nested def runs in whatever context calls *it*
            if isinstance(child, ast.Await):
                yield from walk(child, True)
                continue
            if isinstance(child, ast.Call):
                yield child, awaited
            # Only the await node itself marks its operand; siblings and
            # children of a call are back to the surrounding context.
            yield from walk(child, awaited if not isinstance(child, ast.Call) else False)

    yield from walk(function, False)


class _ModuleCallGraph:
    """Intra-module blocking propagation (the receiver tracking)."""

    def __init__(self, context: LintContext, imports: _ConcurrencyImports) -> None:
        self.imports = imports
        self.locks = _tracked_lock_names(context.tree, imports)
        #: qualified name -> def node, for module functions ("f") and
        #: methods ("Cls.m", reachable as self.m from inside Cls).
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.owner_class: dict[str, str | None] = {}
        for node in context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
                self.owner_class[node.name] = None
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualified = f"{node.name}.{item.name}"
                        self.functions[qualified] = item
                        self.owner_class[qualified] = node.name
        self.blocking_reason: dict[str, str] = {}
        self._propagate()

    # -- the direct table -------------------------------------------------

    def direct_blocking_reason(self, call: ast.Call) -> str | None:
        """Why this single call blocks, or ``None`` if the table is silent."""
        imports = self.imports
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "synchronous file open()"
            origin = imports.blocking_members.get(func.id)
            if origin == "sleep":
                return "time.sleep()"
            if origin is not None:
                return f"os.{origin}()"
            if func.id in imports.shared_memory_names:
                return "SharedMemory construction (shm allocation is disk I/O)"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            owner = receiver.id
            if owner in imports.time_modules and attr == "sleep":
                return "time.sleep()"
            if owner in imports.os_modules and attr in BLOCKING_OS_FUNCTIONS:
                return f"os.{attr}()"
            if owner in imports.subprocess_modules:
                return f"subprocess.{attr}()"
            if attr == "acquire" and owner in self.locks:
                return f"blocking {owner}.acquire() on a threading lock"
        if isinstance(receiver, ast.Attribute) and attr == "acquire":
            if receiver.attr in self.locks:
                return f"blocking .{receiver.attr}.acquire() on a threading lock"
        if attr in BLOCKING_PATH_METHODS:
            return f"synchronous file I/O .{attr}()"
        if attr in BLOCKING_DURABILITY_METHODS:
            return f".{attr}() commits with flush+fsync"
        return None

    # -- call-graph edges -------------------------------------------------

    def callee_key(self, call: ast.Call, caller: str) -> str | None:
        """The in-module function a call resolves to, if any."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.functions and self.owner_class[func.id] is None:
                return func.id
            return None
        chain = _receiver_chain(func)
        if chain is None or len(chain) != 2 or chain[0] != "self":
            return None
        owner = self.owner_class.get(caller)
        if owner is None:
            return None
        qualified = f"{owner}.{chain[1]}"
        return qualified if qualified in self.functions else None

    def _propagate(self) -> None:
        # Seed: sync functions with a direct blocking call of their own.
        for key, node in self.functions.items():
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # an async callee is awaited, not blocking
            for call, _ in _iter_own_calls(node):
                reason = self.direct_blocking_reason(call)
                if reason is not None:
                    self.blocking_reason[key] = reason
                    break
        # Fixed point over bare-name and self.-method edges.
        changed = True
        while changed:
            changed = False
            for key, node in self.functions.items():
                if key in self.blocking_reason or isinstance(
                    node, ast.AsyncFunctionDef
                ):
                    continue
                for call, _ in _iter_own_calls(node):
                    callee = self.callee_key(call, key)
                    if callee is not None and callee in self.blocking_reason:
                        self.blocking_reason[key] = (
                            f"{callee.split('.')[-1]}() -> "
                            f"{self.blocking_reason[callee]}"
                        )
                        changed = True
                        break


@register_rule
class AsyncBlockingCallRule:
    """ASYNC001: nothing reachable from an ``async def`` may block."""

    code = "ASYNC001"
    description = (
        "blocking calls (time.sleep, os.fsync, file I/O, subprocess, "
        "Lock.acquire, SharedMemory ops, fsynced snapshot commits) must not "
        "be reachable from async def bodies; wrapped sync helpers are "
        "tracked through the module call graph -- move the work to "
        "asyncio.to_thread or an executor"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if "async" not in context.source:
            return
        imports = _ConcurrencyImports(context.tree)
        graph = _ModuleCallGraph(context, imports)
        for key, node in graph.functions.items():
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            yield from self._check_coroutine(context, graph, key, node)
        # async defs nested inside functions (test helpers, closures).
        for outer in graph.functions.values():
            for inner in ast.walk(outer):
                if isinstance(inner, ast.AsyncFunctionDef) and inner is not outer:
                    yield from self._check_coroutine(context, graph, "", inner)

    def _check_coroutine(
        self,
        context: LintContext,
        graph: _ModuleCallGraph,
        key: str,
        node: ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for call, awaited in _iter_own_calls(node):
            if awaited:
                continue  # awaiting yields the loop by construction
            reason = graph.direct_blocking_reason(call)
            if reason is not None:
                yield context.finding(
                    call,
                    self.code,
                    f"{reason} on the event loop, inside async def "
                    f"{node.name}() -- every session stalls while this "
                    "runs; use await asyncio.to_thread(...) or an executor",
                )
                continue
            callee = graph.callee_key(call, key)
            if callee is not None and callee in graph.blocking_reason:
                yield context.finding(
                    call,
                    self.code,
                    f"async def {node.name}() calls "
                    f"{callee.split('.')[-1]}(), which blocks "
                    f"({graph.blocking_reason[callee]}) -- run it via "
                    "await asyncio.to_thread(...) instead",
                )


@register_rule
class AsyncTaskLeakRule:
    """ASYNC002: no silently dropped coroutines or unreferenced tasks."""

    code = "ASYNC002"
    description = (
        "coroutines must be awaited or scheduled (a bare call to an async "
        "def creates a coroutine that never runs), and create_task/"
        "ensure_future results must be kept or given a done-callback -- "
        "asyncio only weakly references running tasks"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if "async" not in context.source:
            return
        imports = _ConcurrencyImports(context.tree)
        graph = _ModuleCallGraph(context, imports)
        async_functions = {
            key
            for key, node in graph.functions.items()
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for key, function in graph.functions.items():
            for statement in ast.walk(function):
                if not isinstance(statement, ast.Expr):
                    continue
                call = statement.value
                if not isinstance(call, ast.Call):
                    continue
                callee = graph.callee_key(call, key)
                if callee in async_functions:
                    yield context.finding(
                        call,
                        self.code,
                        f"coroutine {callee.split('.')[-1]}() is neither "
                        "awaited nor scheduled -- it will never execute "
                        "(RuntimeWarning at GC time is the only trace)",
                    )
                elif self._is_task_spawn(call, imports):
                    yield context.finding(
                        call,
                        self.code,
                        "fire-and-forget task: the result of create_task()/"
                        "ensure_future() is discarded, so the task can be "
                        "garbage-collected mid-flight and its exceptions "
                        "vanish -- keep a reference or add_done_callback",
                    )

    @staticmethod
    def _is_task_spawn(call: ast.Call, imports: _ConcurrencyImports) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in ("create_task", "ensure_future")
        if isinstance(func, ast.Attribute):
            if func.attr not in ("create_task", "ensure_future"):
                return False
            # asyncio.create_task(...), loop.create_task(...), or any
            # receiver -- spawning without keeping the handle is the
            # defect regardless of which loop object spawned it.
            return True
        return False
