"""Finding and severity types shared by every analysis rule.

A :class:`Finding` is one diagnostic: a rule code, a severity, a source
span and a human-readable message.  Findings are plain data -- the engine
collects them, the baseline filters them, and the CLI renders them as
text or JSON -- so rules never need to know how their output is consumed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding", "Severity"]


class Severity(enum.Enum):
    """How bad a finding is, ordered from informational to fatal.

    ``ERROR`` findings violate a device contract (the build would not run,
    or would silently compute wrong answers, on the real MSP430);
    ``WARNING`` findings are determinism or hygiene hazards; ``NOTE``
    findings are advisory.
    """

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"note": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule.

    Attributes
    ----------
    path:
        File the finding points at (repo-relative when the engine can
        relativize it, absolute otherwise; ``<generated>`` for checked
        C strings that never touched disk).
    line / col:
        1-based line and 0-based column of the offending node.
    code:
        Rule code, e.g. ``DEV001``.
    message:
        Human-readable description of the violation.
    severity:
        See :class:`Severity`.
    source_line:
        The stripped text of the offending line, used for baseline
        fingerprinting and text rendering (empty when unavailable).
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)
    source_line: str = field(compare=False, default="")

    def render(self) -> str:
        """One-line ``path:line:col: CODE severity: message`` rendering."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} {self.severity.value}: {self.message}"
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the ``--format json`` payload)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
