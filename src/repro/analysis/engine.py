"""The analysis engine: walk files, run rules, apply suppressions.

The engine is deliberately small: rules do the thinking, the engine does
the plumbing (file discovery, module-name inference, pragma filtering,
stable ordering).  Baseline filtering happens one level up, in the CLI,
so programmatic users always see the unfiltered truth.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import LintContext, Rule, all_rules

__all__ = ["Analyzer", "module_name_for_path"]


def module_name_for_path(path: Path) -> str | None:
    """Infer the dotted module name of a file inside a package tree.

    Walks up from the file collecting package directories (those with an
    ``__init__.py``); returns ``None`` for files outside any package.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts or parts[0] != "repro" and "repro" not in parts:
        # Outside the repro tree we still report a best-effort dotted name
        # when the file sits in *some* package; otherwise None.
        return ".".join(parts) if parts and len(parts) > 1 else None
    return ".".join(parts)


class Analyzer:
    """Run a set of rules over files, sources or whole trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: tuple[Rule, ...] = tuple(rules) if rules is not None else all_rules()

    # -- single-source entry points ------------------------------------------

    def lint_context(self, context: LintContext) -> list[Finding]:
        """Run every rule over one parsed file, honouring pragmas."""
        findings: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(context):
                if not context.is_suppressed(finding.line, finding.code):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    def lint_source(
        self, source: str, path: str = "<string>", module: str | None = None
    ) -> list[Finding]:
        """Lint source text under an explicit path/module identity."""
        return self.lint_context(LintContext.from_source(source, path, module))

    def lint_file(self, path: Path, display_root: Path | None = None) -> list[Finding]:
        """Lint one file; syntax errors surface as a single SYN000 finding."""
        display = _display_path(path, display_root)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return [
                Finding(
                    path=display,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    code="SYN000",
                    message=f"file does not parse: {error.msg}",
                    severity=Severity.ERROR,
                )
            ]
        context = LintContext(
            path=display,
            module=module_name_for_path(path),
            source=source,
            tree=tree,
        )
        return self.lint_context(context)

    # -- tree walking -----------------------------------------------------------

    def lint_paths(
        self, paths: Iterable[Path], display_root: Path | None = None
    ) -> list[Finding]:
        """Lint files and/or directories (recursing into ``*.py``)."""
        findings: list[Finding] = []
        for path in paths:
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    findings.extend(self.lint_file(file, display_root))
            else:
                findings.extend(self.lint_file(path, display_root))
        return findings


def _display_path(path: Path, root: Path | None) -> str:
    resolved = path.resolve()
    for base in (root, Path.cwd()):
        if base is None:
            continue
        try:
            return resolved.relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()
