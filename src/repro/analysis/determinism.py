"""DET001: every random stream in the pipeline must be seeded.

The experiment pipeline's whole value is reproducibility -- Table II/III
cells and the fault-matrix are regression-tested bit-for-bit, and the
batch/scalar/chunked scoring paths are proven identical.  One unseeded
``np.random.default_rng()`` (or a call into the legacy global NumPy RNG,
or a time-derived seed) silently breaks all of that.  DET001 flags:

* ``np.random.default_rng()`` / ``Generator`` construction with no seed,
  an explicit ``None`` seed, or a seed derived from wall-clock time or
  OS entropy (``time.time``, ``datetime.now``, ``os.urandom``, ...);
* any call to the legacy global-state NumPy RNG (``np.random.rand``,
  ``np.random.seed``, ...), which is shared mutable state that parallel
  cohort workers would race on;
* module-level stdlib ``random`` calls and unseeded ``random.Random()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import LintContext, register_rule

__all__ = ["DeterminismRule", "LEGACY_NUMPY_RANDOM", "STDLIB_RANDOM_FUNCTIONS"]

#: Legacy numpy.random module-level functions (global hidden state).
LEGACY_NUMPY_RANDOM: frozenset[str] = frozenset(
    {
        "rand",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "seed",
        "get_state",
        "set_state",
    }
)

#: Stdlib random module-level functions (global hidden state).
STDLIB_RANDOM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "getrandbits",
        "randbytes",
        "triangular",
    }
)

#: (module, attribute) pairs whose value is wall-clock/entropy derived.
_ENTROPY_SOURCES: frozenset[tuple[str, str]] = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("os", "urandom"),
        ("os", "getpid"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }
)


class _RandomImports:
    """Local names bound to numpy / numpy.random / random / entropy modules."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: set[str] = set()
        self.numpy_random: set[str] = set()
        self.stdlib_random: set[str] = set()
        self.default_rng_names: set[str] = set()  # from numpy.random import default_rng
        self.random_class_names: set[str] = set()  # from random import Random
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self.numpy.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random.add(alias.asname)
                        else:
                            self.numpy.add("numpy")
                    elif alias.name == "random":
                        self.stdlib_random.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random.add(alias.asname or alias.name)
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            self.default_rng_names.add(alias.asname or alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name == "Random":
                            self.random_class_names.add(alias.asname or alias.name)


@register_rule
class DeterminismRule:
    """DET001: no unseeded or time-seeded RNG, no global RNG state."""

    code = "DET001"
    description = (
        "random streams must be explicitly seeded: no bare "
        "np.random.default_rng(), no legacy np.random.* globals, no "
        "module-level stdlib random calls, no time-derived seeds"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        imports = _RandomImports(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(context, imports, node)

    # ------------------------------------------------------------------

    def _check_call(
        self, context: LintContext, imports: _RandomImports, call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        # np.random.<fn>(...) or npr.<fn>(...)
        receiver = self._numpy_random_receiver(imports, func)
        if receiver is not None:
            attr = receiver
            if attr in ("default_rng", "Generator", "SeedSequence"):
                yield from self._check_seeded_constructor(
                    context, call, f"np.random.{attr}"
                )
            elif attr in LEGACY_NUMPY_RANDOM:
                yield context.finding(
                    call,
                    self.code,
                    f"legacy global-state RNG call np.random.{attr}() -- use "
                    "an explicitly seeded np.random.default_rng(seed) "
                    "Generator threaded through the call tree",
                )
            return
        # default_rng(...) imported directly
        if isinstance(func, ast.Name) and func.id in imports.default_rng_names:
            yield from self._check_seeded_constructor(context, call, func.id)
            return
        # stdlib random.<fn>(...) and random.Random(...)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in imports.stdlib_random:
                if func.attr == "Random":
                    yield from self._check_seeded_constructor(
                        context, call, "random.Random"
                    )
                elif func.attr in STDLIB_RANDOM_FUNCTIONS:
                    yield context.finding(
                        call,
                        self.code,
                        f"module-level stdlib RNG call random.{func.attr}() -- "
                        "global hidden state; use a seeded "
                        "random.Random(seed) or numpy Generator",
                    )
            return
        if isinstance(func, ast.Name) and func.id in imports.random_class_names:
            yield from self._check_seeded_constructor(context, call, func.id)

    def _numpy_random_receiver(
        self, imports: _RandomImports, func: ast.expr
    ) -> str | None:
        """The trailing attr when func is <numpy>.random.<attr> or <npr>.<attr>."""
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in imports.numpy
        ):
            return func.attr
        if isinstance(value, ast.Name) and value.id in imports.numpy_random:
            return func.attr
        return None

    def _check_seeded_constructor(
        self, context: LintContext, call: ast.Call, display: str
    ) -> Iterator[Finding]:
        seed_args = list(call.args) + [kw.value for kw in call.keywords]
        if not seed_args:
            yield context.finding(
                call,
                self.code,
                f"unseeded {display}() -- every random stream must take an "
                "explicit seed so experiments replay bit-for-bit",
            )
            return
        first = seed_args[0]
        if isinstance(first, ast.Constant) and first.value is None:
            yield context.finding(
                call,
                self.code,
                f"{display}(None) draws OS entropy -- pass a concrete seed",
            )
            return
        entropy = self._entropy_source(first)
        if entropy is not None:
            yield context.finding(
                call,
                self.code,
                f"{display}() seeded from {entropy} -- wall-clock/entropy "
                "seeds make runs unreproducible; derive the seed from "
                "experiment configuration instead",
            )

    def _entropy_source(self, expression: ast.expr) -> str | None:
        for node in ast.walk(expression):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                pair = (node.value.id, node.attr)
                if pair in _ENTROPY_SOURCES:
                    return f"{pair[0]}.{pair[1]}"
            if isinstance(node, ast.Name) and node.id in ("urandom", "time_ns"):
                return node.id
        return None
