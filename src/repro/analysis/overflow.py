"""OVF001: fixed-point interval analysis of the quantized accumulator.

``FixedPointLinearModel.decision_fixed`` computes
``acc = sat32(acc + ((w_i * x_i) >> n))`` one feature at a time.  The
saturation is a safety net, not a feature: the generated C is only
faithful to the trained model while the clamp never engages.  This module
proves that statically by exact interval propagation:

* each quantized feature ``x_i`` is bounded by its (quantized) range;
* the product interval of ``w_i * x_i`` is computed exactly (both are
  integers), then shifted with Python's floor semantics -- identical to
  the arithmetic ``>>`` the runtime and the generated C perform;
* the running accumulator interval is tracked across **every prefix**,
  because a transient excursion past int32 would be clamped mid-sum and
  change the final value even if the full sum lands back in range.

The report carries the worst-case bit-width (two's-complement bits the
accumulator would need), so a failing model tells you exactly how many
guard bits the format is short.

The companion AST rule fires on literal ``FixedPointLinearModel(...)``
constructions, honouring an optional ``# ovf-range: LO..HI`` annotation
for the real-valued feature range (default: the full int32 quantized
range, the most conservative assumption).
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import LintContext, register_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.ml.model_codegen import FixedPointLinearModel

__all__ = [
    "OverflowReport",
    "accumulator_interval",
    "analyze_model",
    "quantize_range",
    "FixedPointOverflowRule",
]

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

#: ``# ovf-range: -4.0..4.0`` -- real-valued feature range annotation.
_RANGE_PRAGMA = re.compile(
    r"#\s*ovf-range:\s*(?P<lo>-?\d+(?:\.\d+)?)\s*\.\.\s*(?P<hi>-?\d+(?:\.\d+)?)"
)


@dataclass(frozen=True)
class OverflowReport:
    """Result of the accumulator interval analysis.

    Attributes
    ----------
    lo / hi:
        Exact bounds of the final (unsaturated) accumulator.
    worst_bits:
        Two's-complement bit-width the accumulator needs at its widest
        point across *all prefixes* of the feature loop.
    saturation_reachable:
        Whether any prefix interval escapes the int32 range -- i.e. the
        runtime clamp (and the C code's) could engage and distort the
        decision value.
    """

    lo: int
    hi: int
    worst_bits: int
    saturation_reachable: bool
    n_features: int
    frac_bits: int

    @property
    def proven_safe(self) -> bool:
        return not self.saturation_reachable


def _bits_for(value: int) -> int:
    """Two's-complement bits needed to hold ``value``."""
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def _interval_bits(lo: int, hi: int) -> int:
    return max(_bits_for(lo), _bits_for(hi))


def quantize_range(lo: float, hi: float, frac_bits: int) -> tuple[int, int]:
    """Quantized (saturated) bounds of a real-valued feature range.

    Mirrors ``FixedPointLinearModel.quantize`` conservatively: the lower
    bound floors and the upper bound ceils, which dominates ``np.round``'s
    half-to-even behaviour, so the interval stays sound for any input the
    quantizer can actually produce.
    """
    if hi < lo:
        raise ValueError("feature range must satisfy lo <= hi")
    scale = 1 << frac_bits
    # floor for the lower bound, ceil for the upper: sound for any rounding.
    qlo = math.floor(lo * scale)
    qhi = math.ceil(hi * scale)
    return (
        max(_INT32_MIN, min(_INT32_MAX, qlo)),
        max(_INT32_MIN, min(_INT32_MAX, qhi)),
    )


def accumulator_interval(
    weights_q: Sequence[int],
    bias_q: int,
    frac_bits: int,
    feature_bounds_q: Sequence[tuple[int, int]],
) -> OverflowReport:
    """Exact interval of the ``decision_fixed`` accumulator.

    ``feature_bounds_q`` gives the inclusive quantized bounds of each
    feature.  The propagation is exact (integer endpoints, monotone
    shift), so the returned interval is the tightest sound bound and the
    property ``analyzer bound >= any runtime value`` holds by
    construction.
    """
    if not 1 <= int(frac_bits) <= 30:
        raise ValueError("frac_bits must be in [1, 30]")
    if len(feature_bounds_q) != len(weights_q):
        raise ValueError(
            f"expected {len(weights_q)} feature bounds, got {len(feature_bounds_q)}"
        )
    lo = hi = int(bias_q)
    worst = _interval_bits(lo, hi)
    reachable = not (_INT32_MIN <= lo and hi <= _INT32_MAX)
    for weight, (flo, fhi) in zip(weights_q, feature_bounds_q):
        w = int(weight)
        flo, fhi = int(flo), int(fhi)
        if fhi < flo:
            raise ValueError("feature bounds must satisfy lo <= hi")
        products = (w * flo, w * fhi)
        term_lo = min(products) >> frac_bits
        term_hi = max(products) >> frac_bits
        lo += term_lo
        hi += term_hi
        worst = max(worst, _interval_bits(lo, hi))
        if lo < _INT32_MIN or hi > _INT32_MAX:
            reachable = True
    return OverflowReport(
        lo=lo,
        hi=hi,
        worst_bits=worst,
        saturation_reachable=reachable,
        n_features=len(weights_q),
        frac_bits=int(frac_bits),
    )


def analyze_model(
    model: "FixedPointLinearModel",
    feature_ranges: Sequence[tuple[float, float]] | tuple[float, float] | None = None,
) -> OverflowReport:
    """Run the interval analysis on a built model.

    ``feature_ranges`` is either one real-valued ``(lo, hi)`` applied to
    every feature, a per-feature sequence, or ``None`` for the most
    conservative assumption (any int32-representable quantized input --
    what ``quantize``'s saturation admits).
    """
    n = model.n_features
    if feature_ranges is None:
        bounds = [(_INT32_MIN, _INT32_MAX)] * n
    else:
        ranges = _normalize_ranges(feature_ranges, n)
        if len(ranges) != n:
            raise ValueError(f"expected {n} feature ranges, got {len(ranges)}")
        bounds = [quantize_range(lo, hi, model.frac_bits) for lo, hi in ranges]
    return accumulator_interval(
        model.weights_q.tolist(), model.bias_q, model.frac_bits, bounds
    )


def _normalize_ranges(
    feature_ranges: Sequence[tuple[float, float]] | tuple[float, float], n: int
) -> list[tuple[float, float]]:
    """One shared ``(lo, hi)`` pair broadcasts to every feature."""
    items = list(feature_ranges)
    if len(items) == 2 and all(isinstance(v, (int, float)) for v in items):
        lo, hi = float(items[0]), float(items[1])  # type: ignore[arg-type]
        return [(lo, hi)] * n
    return [(float(lo), float(hi)) for lo, hi in items]


# ----------------------------------------------------------------------
# The AST rule: literal constructions are analyzed in place.
# ----------------------------------------------------------------------


def _literal_int(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_int(node.operand)
        return -inner if inner is not None else None
    return None


def _literal_int_list(node: ast.expr) -> list[int] | None:
    # Dig through np.array([...]) / np.asarray([...]) wrappers.
    if isinstance(node, ast.Call) and node.args:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name in ("array", "asarray"):
            return _literal_int_list(node.args[0])
    if isinstance(node, (ast.List, ast.Tuple)):
        values = [_literal_int(element) for element in node.elts]
        if all(v is not None for v in values):
            return [v for v in values if v is not None]
    return None


@register_rule
class FixedPointOverflowRule:
    """OVF001: literal fixed-point models must be provably clamp-free."""

    code = "OVF001"
    description = (
        "interval analysis of literal FixedPointLinearModel constructions: "
        "the int32 accumulator must be unable to saturate for the declared "
        "feature range (# ovf-range: LO..HI; default: any int32 input)"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
            if name != "FixedPointLinearModel":
                continue
            extracted = self._extract_arguments(node)
            if extracted is None:
                continue  # non-literal construction: not statically analyzable
            weights, bias, frac = extracted
            bounds = self._declared_bounds(context, node, frac, len(weights))
            try:
                report = accumulator_interval(weights, bias, frac, bounds)
            except ValueError:
                continue
            if report.saturation_reachable:
                yield context.finding(
                    node,
                    self.code,
                    "fixed-point accumulator can saturate: worst case needs "
                    f"{report.worst_bits} bits (int32 holds 32); final "
                    f"interval [{report.lo}, {report.hi}] for "
                    f"Q{31 - frac}.{frac} -- lower frac_bits, shrink the "
                    "declared # ovf-range, or rescale the features",
                )

    def _extract_arguments(
        self, call: ast.Call
    ) -> tuple[list[int], int, int] | None:
        values: dict[str, ast.expr] = {}
        for position, arg in enumerate(call.args[:3]):
            values[("weights_q", "bias_q", "frac_bits")[position]] = arg
        for keyword in call.keywords:
            if keyword.arg:
                values[keyword.arg] = keyword.value
        if not {"weights_q", "bias_q", "frac_bits"} <= values.keys():
            return None
        weights = _literal_int_list(values["weights_q"])
        bias = _literal_int(values["bias_q"])
        frac = _literal_int(values["frac_bits"])
        if weights is None or bias is None or frac is None or not 1 <= frac <= 30:
            return None
        return weights, bias, frac

    def _declared_bounds(
        self, context: LintContext, call: ast.Call, frac_bits: int, n: int
    ) -> list[tuple[int, int]]:
        for line in (call.lineno, call.lineno - 1):
            match = _RANGE_PRAGMA.search(context.line_text(line))
            if match:
                lo, hi = float(match.group("lo")), float(match.group("hi"))
                if hi >= lo:
                    return [quantize_range(lo, hi, frac_bits)] * n
        return [(_INT32_MIN, _INT32_MAX)] * n
