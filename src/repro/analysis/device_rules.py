"""Device-contract rules: the libm gate (DEV001) and the float ban (DEV002).

DEV001 is the static twin of :class:`repro.amulet.restricted.RestrictedMath`'s
runtime gate.  Device-tier modules (everything under ``repro.sift_app`` and
``repro.amulet``) model C code compiled for the MSP430, so they may not
call the host's ``math`` module or NumPy's transcendental ufuncs directly
-- every operation must flow through ``RestrictedMath``, which bills
cycles and enforces the per-build libm link.  Even *through*
``RestrictedMath``, the gated transcendentals (the canonical
:data:`~repro.amulet.restricted.LIBM_OPERATIONS` table) are only legal in
functions that belong to the Original tier: ``device_extract_original``
may take ``sqrt``/``atan2``, the Simplified/Reduced paths may not -- the
paper's Simplified build "did not utilize the standard C math library".

DEV002 guards the fixed-point paths of :mod:`repro.ml.model_codegen`:
functions that model integer-only MSP430 code (``decision_fixed`` and
friends) must not touch floats -- no float literals, no ``float()``
casts, no true division, no ``np.float*`` dtypes.  A float sneaking into
one of those functions means the simulation computes something the
generated C cannot.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.amulet.restricted import LIBM_OPERATIONS
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import LintContext, register_rule

__all__ = [
    "DEVICE_PACKAGES",
    "FIXED_POINT_MODULES",
    "GATE_MODULES",
    "NUMPY_TRANSCENDENTALS",
    "ORIGINAL_TIER_FUNCTIONS",
    "DeviceFloatBanRule",
    "DeviceLibmRule",
]

#: Packages whose modules model code running on the device.
DEVICE_PACKAGES: tuple[str, ...] = ("repro.sift_app", "repro.amulet")

#: Modules exempt from DEV001 because they *implement* the gate: the
#: NumPy calls inside ``RestrictedMath``'s own methods sit behind
#: ``_require_libm`` and are the mechanism, not a bypass.
GATE_MODULES: frozenset[str] = frozenset({"repro.amulet.restricted"})

#: Functions allowed to invoke the libm-gated RestrictedMath operations
#: (the Original tier links libm; nested helpers inherit the allowance).
ORIGINAL_TIER_FUNCTIONS: frozenset[str] = frozenset({"device_extract_original"})

#: NumPy ufuncs that lower to libm transcendentals on a C target.
NUMPY_TRANSCENDENTALS: frozenset[str] = frozenset(
    {
        "sqrt",
        "cbrt",
        "exp",
        "exp2",
        "expm1",
        "log",
        "log2",
        "log10",
        "log1p",
        "sin",
        "cos",
        "tan",
        "arcsin",
        "arccos",
        "arctan",
        "arctan2",
        "sinh",
        "cosh",
        "tanh",
        "arcsinh",
        "arccosh",
        "arctanh",
        "hypot",
        "power",
        "float_power",
        "logaddexp",
        "logaddexp2",
    }
)

#: Modules whose ``*_fixed`` / ``fixed_*`` functions model integer-only C.
FIXED_POINT_MODULES: tuple[str, ...] = (
    "repro.ml.model_codegen",
    "repro.amulet.restricted",
)

#: NumPy attributes that name floating-point dtypes.
_NUMPY_FLOAT_DTYPES: frozenset[str] = frozenset(
    {"float16", "float32", "float64", "float128", "float_", "double", "single", "half"}
)

#: math-module attributes that are plain data, not libm entry points.
_MATH_CONSTANTS: frozenset[str] = frozenset({"pi", "e", "tau", "inf", "nan"})


def _in_packages(module: str | None, packages: Iterable[str]) -> bool:
    if module is None:
        return False
    return any(module == p or module.startswith(p + ".") for p in packages)


class _ImportTable:
    """Names bound to the math/numpy modules and their members."""

    def __init__(self, tree: ast.Module) -> None:
        self.math_modules: set[str] = set()  # import math [as m] / cmath
        self.math_members: set[str] = set()  # from math import sqrt [as s]
        self.numpy_modules: set[str] = set()  # import numpy [as np]
        self.numpy_members: dict[str, str] = {}  # local name -> numpy attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name in ("math", "cmath"):
                        self.math_modules.add(local)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module in ("math", "cmath"):
                    for alias in node.names:
                        self.math_members.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        self.numpy_members[alias.asname or alias.name] = alias.name


@register_rule
class DeviceLibmRule:
    """DEV001: device-tier code must route libm through RestrictedMath."""

    code = "DEV001"
    description = (
        "device-tier modules (repro.sift_app.*, repro.amulet.*) may not call "
        "math.* or transcendental NumPy ufuncs directly, and RestrictedMath's "
        "libm-gated operations are only legal in Original-tier functions"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if not _in_packages(context.module, DEVICE_PACKAGES):
            return
        if context.module in GATE_MODULES:
            return
        imports = _ImportTable(context.tree)
        yield from self._walk(context, imports, context.tree, tier_allows_libm=False)

    def _walk(
        self,
        context: LintContext,
        imports: _ImportTable,
        node: ast.AST,
        tier_allows_libm: bool,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                allows = tier_allows_libm or child.name in ORIGINAL_TIER_FUNCTIONS
                yield from self._walk(context, imports, child, allows)
                continue
            yield from self._check_node(context, imports, child, tier_allows_libm)
            yield from self._walk(context, imports, child, tier_allows_libm)

    def _check_node(
        self,
        context: LintContext,
        imports: _ImportTable,
        node: ast.AST,
        tier_allows_libm: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            owner = node.value.id
            if owner in imports.math_modules and node.attr not in _MATH_CONSTANTS:
                yield context.finding(
                    node,
                    self.code,
                    f"direct call into the C math library: math.{node.attr} -- "
                    "device-tier code must go through RestrictedMath, whose "
                    "libm gate bills cycles and enforces the per-build link",
                )
                return
            if owner in imports.numpy_modules and node.attr in NUMPY_TRANSCENDENTALS:
                yield context.finding(
                    node,
                    self.code,
                    f"transcendental NumPy ufunc {owner}.{node.attr} in "
                    "device-tier code -- on the MSP430 this is a libm call; "
                    "use the RestrictedMath environment instead",
                )
                return
            if owner not in imports.numpy_modules and node.attr in LIBM_OPERATIONS:
                # A method call spelled like RestrictedMath's gated surface
                # (m.sqrt / m.atan2 / m.exp): legal only in Original-tier
                # functions, which are the ones that link libm.
                if not tier_allows_libm and _is_called(node):
                    yield context.finding(
                        node,
                        self.code,
                        f"libm-gated operation .{node.attr}() outside an "
                        "Original-tier function -- the Simplified/Reduced "
                        "builds do not link the C math library "
                        f"(allowed only in: {', '.join(sorted(ORIGINAL_TIER_FUNCTIONS))})",
                    )
                return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in imports.math_members:
                yield context.finding(
                    node,
                    self.code,
                    f"call to {name}() imported from the math module -- "
                    "device-tier code must go through RestrictedMath",
                )
            elif imports.numpy_members.get(name) in NUMPY_TRANSCENDENTALS:
                yield context.finding(
                    node,
                    self.code,
                    f"call to NumPy transcendental {name}() in device-tier "
                    "code -- on the MSP430 this is a libm call; use the "
                    "RestrictedMath environment instead",
                )


def _is_called(attribute: ast.Attribute) -> bool:
    """Heuristic: attribute nodes we flag are the func of some call.

    The visitor sees the Attribute before knowing its parent, so gated
    method detection re-checks at the Call level would double-report;
    instead we accept any load of ``.sqrt``/``.atan2``/``.exp`` on a
    non-module receiver as a (potential) gated call site.
    """
    return isinstance(attribute.ctx, ast.Load)


def _function_is_fixed_point(name: str) -> bool:
    return name.endswith("_fixed") or name.startswith("fixed_")


@register_rule
class DeviceFloatBanRule:
    """DEV002: fixed-point functions must stay in integer arithmetic."""

    code = "DEV002"
    description = (
        "fixed-point paths of repro.ml.model_codegen (functions named "
        "*_fixed / fixed_*) may not use float literals, float() casts, "
        "true division or floating NumPy dtypes"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.module not in FIXED_POINT_MODULES:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _function_is_fixed_point(node.name):
                    yield from self._check_function(context, node)

    def _check_function(
        self, context: LintContext, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        where = f"fixed-point function {function.name}()"
        for node in ast.walk(function):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield context.finding(
                    node,
                    self.code,
                    f"float literal {node.value!r} in {where} -- the MSP430 "
                    "build of this path has no floating-point arithmetic",
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "float":
                    yield context.finding(
                        node,
                        self.code,
                        f"float() cast in {where} -- integer arithmetic only",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield context.finding(
                    node,
                    self.code,
                    f"true division in {where} -- use shifts (>>) or integer "
                    "division, as the generated C does",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                yield context.finding(
                    node,
                    self.code,
                    f"true division in {where} -- use shifts (>>) or integer "
                    "division, as the generated C does",
                )
            elif isinstance(node, ast.Attribute) and node.attr in _NUMPY_FLOAT_DTYPES:
                yield context.finding(
                    node,
                    self.code,
                    f"floating-point dtype .{node.attr} in {where} -- "
                    "quantized tensors must stay integral",
                    severity=Severity.ERROR,
                )
