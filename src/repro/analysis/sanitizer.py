"""The event-loop stall sanitizer: ASYNC001's claim, checked at runtime.

The static rule proves no *known* blocking call is reachable from a
coroutine; this module measures what actually happens.  Every asyncio
callback -- a task step, a ``call_soon``, a timer -- runs through
``asyncio.events.Handle._run``; :class:`LoopStallSanitizer` wraps that
single choke point with a ``perf_counter`` timer and records every
callback that held the loop longer than the threshold, with enough
identity (the callback's qualname) to find the offender.  Install is a
context manager; tests assert via :meth:`~LoopStallSanitizer.check`,
which raises :class:`LoopStallError` listing the worst stalls.

The default threshold (250 ms) is deliberately far above anything the
gateway's loop-side work should take -- applying a 256-window batch of
verdicts is sub-millisecond -- and far below the stalls the rule family
exists to catch (an fsynced snapshot epoch of a 1k-wearer fleet, a
scoring pass that should have been in a thread).  It is a tripwire for
category errors, not a latency SLO; the bench-gate owns the SLO.

Threading: ``_run`` executes on the loop thread but a fleet test may run
several loops (``asyncio.run`` per case), so the stall list is guarded
by its own lock.  Install/uninstall nests safely via a module-level
depth count -- the innermost uninstall restores the original method.
"""

from __future__ import annotations

import asyncio.events
import threading
import time
from dataclasses import dataclass

__all__ = ["LoopStall", "LoopStallError", "LoopStallSanitizer"]


class LoopStallError(AssertionError):
    """The event loop was held past the sanitizer's threshold."""


@dataclass(frozen=True)
class LoopStall:
    """One callback that held the event loop too long."""

    duration_s: float
    callback: str

    def render(self) -> str:
        return f"{self.duration_s * 1e3:.1f} ms in {self.callback}"


def _describe_callback(handle: asyncio.events.Handle) -> str:
    callback = getattr(handle, "_callback", None)
    if callback is None:
        return repr(handle)
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return qualname
    # Task steps hide the coroutine inside a bound method of the task.
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return repr(owner)
    return repr(callback)


#: Nesting state: (depth, original Handle._run).  Guarded by _PATCH_LOCK;
#: single writer per install/uninstall call.
_PATCH_LOCK = threading.Lock()
_PATCH_DEPTH = 0
_ORIGINAL_RUN = None
_ACTIVE: list["LoopStallSanitizer"] = []


class LoopStallSanitizer:
    """Record every event-loop callback exceeding ``threshold_s``.

    Usage::

        with LoopStallSanitizer() as sanitizer:
            asyncio.run(main())
        sanitizer.check()   # raises LoopStallError on any stall

    ``max_records`` bounds memory on a pathological run; the counter
    keeps the true total so ``check`` never under-reports.
    """

    DEFAULT_THRESHOLD_S = 0.25

    def __init__(
        self,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        max_records: int = 100,
    ) -> None:
        if threshold_s <= 0:
            raise ValueError("threshold_s must be positive")
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.threshold_s = float(threshold_s)
        self.max_records = int(max_records)
        self.stalls: list[LoopStall] = []
        self.total_stalls = 0
        self._lock = threading.Lock()
        self._installed = False

    # -- recording ------------------------------------------------------

    def _record(self, duration_s: float, handle: asyncio.events.Handle) -> None:
        with self._lock:
            self.total_stalls += 1
            if len(self.stalls) < self.max_records:
                self.stalls.append(
                    LoopStall(duration_s=duration_s, callback=_describe_callback(handle))
                )

    @property
    def max_stall_s(self) -> float:
        with self._lock:
            return max((stall.duration_s for stall in self.stalls), default=0.0)

    def check(self) -> None:
        """Raise :class:`LoopStallError` if any callback stalled the loop."""
        with self._lock:
            total = self.total_stalls
            worst = sorted(
                self.stalls, key=lambda stall: stall.duration_s, reverse=True
            )[:5]
        if not total:
            return
        details = "; ".join(stall.render() for stall in worst)
        raise LoopStallError(
            f"event loop stalled {total} time(s) past "
            f"{self.threshold_s * 1e3:.0f} ms: {details}"
        )

    # -- installation ---------------------------------------------------

    def install(self) -> None:
        """Start timing every callback (idempotent per sanitizer)."""
        global _PATCH_DEPTH, _ORIGINAL_RUN
        if self._installed:
            return
        with _PATCH_LOCK:
            if _PATCH_DEPTH == 0:
                _ORIGINAL_RUN = asyncio.events.Handle._run
                original = _ORIGINAL_RUN

                def _timed_run(handle: asyncio.events.Handle) -> None:
                    began = time.perf_counter()
                    try:
                        original(handle)
                    finally:
                        elapsed = time.perf_counter() - began
                        for sanitizer in _ACTIVE:
                            if elapsed >= sanitizer.threshold_s:
                                sanitizer._record(elapsed, handle)

                asyncio.events.Handle._run = _timed_run  # type: ignore[method-assign]
            _PATCH_DEPTH += 1
            _ACTIVE.append(self)
            self._installed = True

    def uninstall(self) -> None:
        """Stop timing; restores the pristine ``Handle._run`` at depth 0."""
        global _PATCH_DEPTH
        if not self._installed:
            return
        with _PATCH_LOCK:
            _ACTIVE.remove(self)
            _PATCH_DEPTH -= 1
            if _PATCH_DEPTH == 0 and _ORIGINAL_RUN is not None:
                asyncio.events.Handle._run = _ORIGINAL_RUN  # type: ignore[method-assign]
            self._installed = False

    def __enter__(self) -> "LoopStallSanitizer":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
